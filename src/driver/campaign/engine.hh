/**
 * @file
 * The campaign engine: thread-pooled, cache-deduplicated execution of
 * experiment campaigns.
 *
 * The engine fingerprints every point, deduplicates identical points
 * through its ResultCache, runs the unique misses on a pool of worker
 * threads, and returns the results in input order. Because each
 * simulation is a pure function of its Experiment (all randomness is
 * seeded from the experiment parameters), a multi-threaded run is
 * byte-identical to the sequential runSweep() path.
 */

#ifndef TDM_DRIVER_CAMPAIGN_ENGINE_HH
#define TDM_DRIVER_CAMPAIGN_ENGINE_HH

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "driver/campaign/campaign.hh"
#include "driver/campaign/result_cache.hh"
#include "driver/graph_cache.hh"
#include "sim/config.hh"

namespace tdm::driver::campaign {

/** Engine knobs. */
struct EngineOptions
{
    /** Worker threads; 0 selects the hardware concurrency. */
    unsigned threads = 1;

    /** Deduplicate identical points through the result cache. */
    bool useCache = true;

    /**
     * When nonzero, overrides every point's duration-noise seed with
     * seedBase + point index — deterministic per job by construction
     * (a job's seed depends on its position, never on which worker
     * thread picks it up or in which order jobs finish).
     */
    std::uint64_t seedBase = 0;

    /** Print per-job progress lines to stderr. */
    bool progress = false;

    /**
     * When nonempty, every simulated point whose spec enables trace
     * categories (trace.categories != none) writes its Chrome trace
     * JSON to "<traceDir>/<digest>.json". The directory must exist.
     * Points with tracing off are unaffected — their machines never
     * allocate a buffer.
     */
    std::string traceDir;

    /**
     * Build each distinct (workload, effective params) graph once per
     * engine and share it read-only across worker threads, instead of
     * rebuilding it inside every simulated point. Pure wall-clock
     * optimization — summaries are byte-identical either way (the
     * graph-sharing equivalence test pins this). Off is only useful
     * for that comparison.
     */
    bool shareGraphs = true;

    /**
     * External result backend (typically the persistent on-disk
     * store): consulted after an in-memory cache miss, published to
     * after every successful simulation. Non-owning; must outlive the
     * engine. Only consulted when useCache is on.
     */
    CacheBackend *backend = nullptr;

    /**
     * Warm-start batching: group the points this run simulates by
     * their warm-prefix fingerprint (the Warmup-phase projection of
     * the canonical spec, see spec::KeyPhase), simulate one warmup
     * leg per group, and fork the remaining members from a snapshot
     * taken at the warmup/ROI boundary (members differing only in
     * `power.*` keys fork at finalization and share the whole
     * trajectory). Pure wall-clock optimization: forked summaries are
     * bit-identical to cold runs (the forked-equivalence test pins
     * this), and groups degrade to cold legs when a snapshot is
     * unavailable. Off (campaign_run --no-warm-fork) is only useful
     * for that comparison and for timing baselines.
     */
    bool warmFork = true;
};

/**
 * How a point's summary was obtained — the service-layer dedup
 * counters. "Disk" means the external CacheBackend (the on-disk
 * store); "Inflight" means the point attached to an identical point
 * already simulating (in this run or a concurrent one) instead of
 * re-simulating; "Forked" means the point was simulated, but resumed
 * from another point's warmup (or whole-trajectory) snapshot instead
 * of starting cold (EngineOptions::warmFork).
 */
enum class JobSource { Simulated, Memory, Disk, Inflight, Forked };

/** "simulated" / "memory" / "disk" / "inflight" / "forked". */
const char *jobSourceName(JobSource source);

/** Outcome of one campaign point. */
struct JobResult
{
    std::string label;
    std::string digest;    ///< short fingerprint digest
    sim::Config spec;      ///< full canonical spec of the point (its
                           ///< serialization is the cache key)
    RunSummary summary{};
    bool cacheHit = false; ///< served without simulating this point
                           ///< (Memory/Disk/Inflight; Forked still
                           ///< simulates, just not from tick 0)
    JobSource source = JobSource::Simulated; ///< where the summary
                                             ///< came from
    double wallMs = 0.0;   ///< simulation wall-clock (0 for cache hits)
    double doneAtMs = 0.0; ///< when this point resolved, in ms since
                           ///< its run() started — the live-progress
                           ///< timeline (throughput, ETA). Host
                           ///< timing: reported, never cached.
    std::string error;     ///< empty when the run completed
    bool threw = false;    ///< error came from an exception, not the
                           ///< simulator's incompletion path
    std::string tracePath; ///< trace JSON written for this point
                           ///< (EngineOptions::traceDir; else empty)

    /** The experiment ran (or was cached) and completed. */
    bool ok() const { return error.empty() && summary.completed; }
};

/**
 * Per-point completion hook: invoked exactly once per point, as each
 * point resolves (cache/backend hits during the serial intake phase,
 * simulated points as their worker finishes, attached points when
 * their owner publishes). Invocations are serialized by the engine —
 * handlers never race each other — but run on engine threads, so a
 * handler must not call back into the same engine. The JobResult
 * reference is only valid for the duration of the call. This is how
 * the campaign service streams results as they finish.
 */
using JobCallback = std::function<void(const JobResult &job,
                                       std::size_t index,
                                       std::size_t total)>;

/** Outcome of one campaign. */
struct CampaignResult
{
    std::string name;
    std::vector<JobResult> jobs; ///< in point order
    /** Metric-selection globs the export writers apply to each job's
     *  metric tree (from Campaign::metrics / campaign_run --metrics);
     *  empty selects everything. */
    std::string metricsPattern;
    unsigned threads = 1;
    double wallMs = 0.0;         ///< end-to-end campaign wall-clock
    double simMsTotal = 0.0;     ///< summed wall-clock of simulated
                                 ///< points (cache hits cost ~0)
    std::uint64_t cacheHits = 0; ///< fromMemory + fromDisk + fromInflight
    std::uint64_t simulated = 0; ///< points simulated cold (from tick 0)
    std::uint64_t fromMemory = 0;   ///< served from the in-memory cache
    std::uint64_t fromDisk = 0;     ///< served from the external backend
    std::uint64_t fromInflight = 0; ///< attached to an identical
                                    ///< in-flight simulation
    std::uint64_t fromForked = 0;   ///< simulated by forking another
                                    ///< point's warm-start snapshot
    std::uint64_t warmupsShared = 0; ///< cold warmup legs at least one
                                     ///< forked point resumed from
    std::uint64_t graphBuilds = 0; ///< distinct task graphs built
    std::uint64_t graphShares = 0; ///< simulated points served a
                                   ///< cached shared graph

    /** Number of jobs that failed to complete. */
    std::size_t failures() const;

    /** All jobs completed. */
    bool allOk() const { return failures() == 0; }

    /** Find a job by label; nullptr when absent. */
    const JobResult *find(const std::string &label) const;

    /** Find a job by label; fatal when absent. */
    const JobResult &at(const std::string &label) const;
};

/** Parse a nonnegative integer CLI value no larger than @p max; fatal
 *  (with the flag named) on anything else, instead of throwing out of
 *  main. */
std::uint64_t parseUintArg(const char *value, const char *flag,
                           std::uint64_t max = UINT64_MAX);

/** Parse the bench binaries' common flags (--threads N; default: all
 *  hardware threads) into engine options. */
EngineOptions benchEngineOptions(int argc, char **argv);

/**
 * The engine. Its cache persists across run() calls, so executing
 * several campaigns on one engine deduplicates their shared points
 * (e.g. the SW+FIFO baselines common to fig12 and fig13).
 *
 * Error handling: a job whose experiment fails to complete (watchdog,
 * deadlock) or throws is reported through JobResult::error — the
 * campaign keeps running. Configuration errors that reach sim::fatal
 * / sim::panic still terminate the process, as they do everywhere
 * else in the simulator.
 */
class CampaignEngine
{
  public:
    explicit CampaignEngine(EngineOptions opts = {});

    /** Run a campaign; @p onJob (optional) streams points as they
     *  resolve. */
    CampaignResult run(const Campaign &c,
                       const JobCallback &onJob = nullptr);

    /** Run an ad-hoc list of points under @p name. */
    CampaignResult run(const std::string &name,
                       const std::vector<SweepPoint> &points,
                       const JobCallback &onJob = nullptr);

    ResultCache &cache() { return cache_; }

    /** The engine's build-once task-graph store; like the result
     *  cache it persists across run() calls. */
    GraphCache &graphCache() { return graphs_; }

    const EngineOptions &options() const { return opts_; }

    /** Points currently simulating (or claimed) across all concurrent
     *  run() calls on this engine. */
    std::size_t inflightCount() const;

  private:
    /**
     * One claimed fingerprint: the first run() to miss both caches on
     * a key becomes its owner and simulates it; every concurrent
     * claimant of the same key attaches here and is handed the
     * owner's outcome instead of re-simulating. This is the service
     * dedup invariant: N clients sweeping overlapping grids cost one
     * simulation per distinct fingerprint, even before the caches are
     * warm.
     */
    struct Inflight
    {
        std::mutex m;
        std::condition_variable cv;
        bool done = false;
        RunSummary summary{};
        std::string error;
        bool threw = false;
        std::string tracePath;
    };

    /** Claim @p key: (entry, true) when this caller became the owner,
     *  (entry, false) when it attached to an existing claim. */
    std::pair<std::shared_ptr<Inflight>, bool>
    claimInflight(const std::string &key);

    /** Publish @p job's outcome to @p key's claim and release it. */
    void resolveInflight(const std::string &key, const JobResult &job);

    EngineOptions opts_;
    ResultCache cache_;
    GraphCache graphs_;

    mutable std::mutex inflightMutex_;
    std::unordered_map<std::string, std::shared_ptr<Inflight>>
        inflight_;
};

} // namespace tdm::driver::campaign

#endif // TDM_DRIVER_CAMPAIGN_ENGINE_HH
