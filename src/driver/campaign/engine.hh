/**
 * @file
 * The campaign engine: thread-pooled, cache-deduplicated execution of
 * experiment campaigns.
 *
 * The engine fingerprints every point, deduplicates identical points
 * through its ResultCache, runs the unique misses on a pool of worker
 * threads, and returns the results in input order. Because each
 * simulation is a pure function of its Experiment (all randomness is
 * seeded from the experiment parameters), a multi-threaded run is
 * byte-identical to the sequential runSweep() path.
 */

#ifndef TDM_DRIVER_CAMPAIGN_ENGINE_HH
#define TDM_DRIVER_CAMPAIGN_ENGINE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "driver/campaign/campaign.hh"
#include "driver/campaign/result_cache.hh"
#include "driver/graph_cache.hh"
#include "sim/config.hh"

namespace tdm::driver::campaign {

/** Engine knobs. */
struct EngineOptions
{
    /** Worker threads; 0 selects the hardware concurrency. */
    unsigned threads = 1;

    /** Deduplicate identical points through the result cache. */
    bool useCache = true;

    /**
     * When nonzero, overrides every point's duration-noise seed with
     * seedBase + point index — deterministic per job by construction
     * (a job's seed depends on its position, never on which worker
     * thread picks it up or in which order jobs finish).
     */
    std::uint64_t seedBase = 0;

    /** Print per-job progress lines to stderr. */
    bool progress = false;

    /**
     * When nonempty, every simulated point whose spec enables trace
     * categories (trace.categories != none) writes its Chrome trace
     * JSON to "<traceDir>/<digest>.json". The directory must exist.
     * Points with tracing off are unaffected — their machines never
     * allocate a buffer.
     */
    std::string traceDir;

    /**
     * Build each distinct (workload, effective params) graph once per
     * engine and share it read-only across worker threads, instead of
     * rebuilding it inside every simulated point. Pure wall-clock
     * optimization — summaries are byte-identical either way (the
     * graph-sharing equivalence test pins this). Off is only useful
     * for that comparison.
     */
    bool shareGraphs = true;
};

/** Outcome of one campaign point. */
struct JobResult
{
    std::string label;
    std::string digest;    ///< short fingerprint digest
    sim::Config spec;      ///< full canonical spec of the point (its
                           ///< serialization is the cache key)
    RunSummary summary{};
    bool cacheHit = false; ///< served from the cache, not simulated
    double wallMs = 0.0;   ///< simulation wall-clock (0 for cache hits)
    std::string error;     ///< empty when the run completed
    bool threw = false;    ///< error came from an exception, not the
                           ///< simulator's incompletion path
    std::string tracePath; ///< trace JSON written for this point
                           ///< (EngineOptions::traceDir; else empty)

    /** The experiment ran (or was cached) and completed. */
    bool ok() const { return error.empty() && summary.completed; }
};

/** Outcome of one campaign. */
struct CampaignResult
{
    std::string name;
    std::vector<JobResult> jobs; ///< in point order
    /** Metric-selection globs the export writers apply to each job's
     *  metric tree (from Campaign::metrics / campaign_run --metrics);
     *  empty selects everything. */
    std::string metricsPattern;
    unsigned threads = 1;
    double wallMs = 0.0;         ///< end-to-end campaign wall-clock
    double simMsTotal = 0.0;     ///< summed wall-clock of simulated
                                 ///< points (cache hits cost ~0)
    std::uint64_t cacheHits = 0;
    std::uint64_t simulated = 0;
    std::uint64_t graphBuilds = 0; ///< distinct task graphs built
    std::uint64_t graphShares = 0; ///< simulated points served a
                                   ///< cached shared graph

    /** Number of jobs that failed to complete. */
    std::size_t failures() const;

    /** All jobs completed. */
    bool allOk() const { return failures() == 0; }

    /** Find a job by label; nullptr when absent. */
    const JobResult *find(const std::string &label) const;

    /** Find a job by label; fatal when absent. */
    const JobResult &at(const std::string &label) const;
};

/** Parse a nonnegative integer CLI value no larger than @p max; fatal
 *  (with the flag named) on anything else, instead of throwing out of
 *  main. */
std::uint64_t parseUintArg(const char *value, const char *flag,
                           std::uint64_t max = UINT64_MAX);

/** Parse the bench binaries' common flags (--threads N; default: all
 *  hardware threads) into engine options. */
EngineOptions benchEngineOptions(int argc, char **argv);

/**
 * The engine. Its cache persists across run() calls, so executing
 * several campaigns on one engine deduplicates their shared points
 * (e.g. the SW+FIFO baselines common to fig12 and fig13).
 *
 * Error handling: a job whose experiment fails to complete (watchdog,
 * deadlock) or throws is reported through JobResult::error — the
 * campaign keeps running. Configuration errors that reach sim::fatal
 * / sim::panic still terminate the process, as they do everywhere
 * else in the simulator.
 */
class CampaignEngine
{
  public:
    explicit CampaignEngine(EngineOptions opts = {});

    /** Run a campaign. */
    CampaignResult run(const Campaign &c);

    /** Run an ad-hoc list of points under @p name. */
    CampaignResult run(const std::string &name,
                       const std::vector<SweepPoint> &points);

    ResultCache &cache() { return cache_; }

    /** The engine's build-once task-graph store; like the result
     *  cache it persists across run() calls. */
    GraphCache &graphCache() { return graphs_; }

    const EngineOptions &options() const { return opts_; }

  private:
    EngineOptions opts_;
    ResultCache cache_;
    GraphCache graphs_;
};

} // namespace tdm::driver::campaign

#endif // TDM_DRIVER_CAMPAIGN_ENGINE_HH
