/**
 * @file
 * Thread-safe result cache keyed by canonical experiment fingerprints.
 *
 * The campaign engine consults the cache before simulating a point and
 * publishes every computed summary, so identical points — within one
 * campaign or across campaigns sharing an engine — simulate once.
 */

#ifndef TDM_DRIVER_CAMPAIGN_RESULT_CACHE_HH
#define TDM_DRIVER_CAMPAIGN_RESULT_CACHE_HH

#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "driver/experiment.hh"

namespace tdm::driver::campaign {

/**
 * External result backend behind the in-memory cache: the campaign
 * engine consults one (when configured) on a memory miss and publishes
 * every freshly simulated summary into it. The canonical
 * implementation is the persistent on-disk store
 * (driver::service::ResultStore); the interface exists so the engine
 * never depends on filesystems or sockets.
 *
 * Contract: fetch/publish are called concurrently from engine worker
 * threads and must be thread-safe. fetch returns nullopt on any miss
 * or unreadable entry (a backend must degrade to a miss, never throw
 * for corruption); publish must not throw on I/O failure (warn and
 * drop instead — losing a cache entry is always safe).
 */
class CacheBackend
{
  public:
    virtual ~CacheBackend() = default;

    /** Summary stored under @p key, or nullopt. */
    virtual std::optional<RunSummary> fetch(const std::string &key) = 0;

    /** Persist @p summary under @p key. */
    virtual void publish(const std::string &key,
                         const RunSummary &summary) = 0;

    /** Short name for logs/stats ("disk-store"). */
    virtual const char *backendName() const = 0;
};

/** Fingerprint-keyed store of run summaries. */
class ResultCache
{
  public:
    /**
     * Summary-schema version, folded into every internal cache key.
     * Bump whenever the shape of a cached RunSummary changes (v2:
     * summaries carry the full MetricSet tree, not six fixed fields)
     * so entries written under an older schema can never be served —
     * a no-op for this in-process map, but load-bearing for any
     * persisted or shared cache built on these keys.
     */
    static constexpr unsigned kSchemaVersion = 2;

    /** Look up @p key; counts a hit or miss. */
    std::optional<RunSummary> lookup(const std::string &key);

    /** Publish the summary computed for @p key. */
    void store(const std::string &key, const RunSummary &summary);

    std::size_t size() const;
    std::uint64_t hits() const;
    std::uint64_t misses() const;
    void clear();

  private:
    mutable std::mutex mutex_;
    std::unordered_map<std::string, RunSummary> map_;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
};

} // namespace tdm::driver::campaign

#endif // TDM_DRIVER_CAMPAIGN_RESULT_CACHE_HH
