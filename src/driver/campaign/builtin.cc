/**
 * @file
 * Built-in campaigns: the multi-point paper figures and ablations,
 * expressed as named point sets so the engine (and the campaign_run
 * CLI) can execute them. The bench binaries build their tables from
 * these same definitions, so figure output and campaign output can
 * never drift apart.
 */

#include "driver/campaign/campaign.hh"

#include "runtime/scheduler.hh"
#include "workloads/registry.hh"

namespace tdm::driver::campaign {

namespace {

SweepPoint
point(const std::string &workload, core::RuntimeType runtime,
      const std::string &scheduler)
{
    Experiment e;
    e.workload = workload;
    e.runtime = runtime;
    e.scheduler = scheduler;
    return SweepPoint{
        pointLabel(workload, core::traitsOf(runtime).name, scheduler), e};
}

/** Figure 12: every (SW, TDM) x scheduler combination per benchmark. */
Campaign
makeFig12()
{
    Campaign c;
    for (const auto &w : wl::allWorkloads()) {
        for (const auto &s : rt::allSchedulerNames())
            c.points.push_back(point(w.name, core::RuntimeType::Software, s));
        for (const auto &s : rt::allSchedulerNames())
            c.points.push_back(point(w.name, core::RuntimeType::Tdm, s));
    }
    return c;
}

/** Figure 13: SW baseline, Carbon, Task Superscalar, TDM x schedulers. */
Campaign
makeFig13()
{
    Campaign c;
    for (const auto &w : wl::allWorkloads()) {
        c.points.push_back(
            point(w.name, core::RuntimeType::Software, "fifo"));
        c.points.push_back(
            point(w.name, core::RuntimeType::Carbon, "fifo"));
        c.points.push_back(
            point(w.name, core::RuntimeType::TaskSuperscalar, "fifo"));
        for (const auto &s : rt::allSchedulerNames())
            c.points.push_back(point(w.name, core::RuntimeType::Tdm, s));
    }
    return c;
}

/** Core-count scaling ablation: SW vs TDM at 8..64 cores. */
Campaign
makeAblationScaling()
{
    static const unsigned coreCounts[] = {8, 16, 32, 64};
    static const char *workloads[] = {"cholesky", "qr", "streamcluster"};

    Campaign c;
    for (const char *w : workloads) {
        for (unsigned cores : coreCounts) {
            for (core::RuntimeType rt_ : {core::RuntimeType::Software,
                                          core::RuntimeType::Tdm}) {
                SweepPoint p = point(w, rt_, "fifo");
                p.exp.config.numCores = cores;
                // Mesh must fit cores + the DMU node.
                unsigned dim = 2;
                while (dim * dim < cores + 1)
                    ++dim;
                p.exp.config.mesh.width = dim;
                p.exp.config.mesh.height = dim;
                p.label = std::string(w) + "/c" + std::to_string(cores)
                        + "/" + core::traitsOf(rt_).name;
                c.points.push_back(std::move(p));
            }
        }
    }
    return c;
}

} // namespace

namespace detail {

void
registerBuiltinCampaigns()
{
    static const bool once = [] {
        registerCampaign("fig12",
                         "Fig. 12: scheduler sweep under SW and TDM",
                         makeFig12);
        registerCampaign("fig13",
                         "Fig. 13: Carbon / Task Superscalar / TDM "
                         "vs the SW baseline",
                         makeFig13);
        registerCampaign("ablation_scaling",
                         "Core-count scaling ablation: SW vs TDM at "
                         "8-64 cores",
                         makeAblationScaling);
        return true;
    }();
    (void)once;
}

} // namespace detail

} // namespace tdm::driver::campaign
