/**
 * @file
 * Built-in campaigns: the multi-point paper figures and ablations,
 * declared as spec grids so the engine (and the campaign_run CLI) can
 * execute them. The bench binaries build their tables from these same
 * definitions, so figure output and campaign output can never drift
 * apart — and test_spec.cc pins the grid expansions byte-identical
 * (labels and fingerprints) to the historical hand-coded loops.
 */

#include "driver/campaign/campaign.hh"

#include "driver/spec/grid.hh"
#include "runtime/scheduler.hh"
#include "workloads/registry.hh"

namespace tdm::driver::campaign {

namespace {

std::vector<std::string>
workloadNames()
{
    std::vector<std::string> names;
    for (const auto &w : wl::allWorkloads())
        names.push_back(w.name);
    return names;
}

/** Figure 12: every (SW, TDM) x scheduler combination per benchmark. */
spec::Grid
fig12Grid()
{
    return spec::Grid()
        .axis("workload", workloadNames())
        .axis("runtime", {"sw", "tdm"})
        .axis("scheduler", rt::allSchedulerNames())
        .label("{workload}/{runtime}/{scheduler}");
}

/** Figure 13: SW baseline, Carbon, Task Superscalar, TDM x schedulers. */
spec::Grid
fig13Grid()
{
    // The runtime/scheduler combinations are not a product: the three
    // baselines run FIFO only, TDM runs every policy — a list axis.
    std::vector<std::vector<std::string>> rows = {
        {"sw", "fifo"}, {"carbon", "fifo"}, {"tss", "fifo"}};
    for (const auto &s : rt::allSchedulerNames())
        rows.push_back({"tdm", s});
    return spec::Grid()
        .axis("workload", workloadNames())
        .zip({"runtime", "scheduler"}, std::move(rows))
        .label("{workload}/{runtime}/{scheduler}");
}

/** Core-count scaling ablation: SW vs TDM at 8..64 cores. */
spec::Grid
ablationScalingGrid()
{
    // The mesh must fit cores + the DMU node, so the core count zips
    // with its fitted mesh dimension instead of sweeping alone.
    std::vector<std::vector<std::string>> coreRows;
    for (unsigned cores : {8u, 16u, 32u, 64u}) {
        unsigned dim = 2;
        while (dim * dim < cores + 1)
            ++dim;
        coreRows.push_back({std::to_string(cores), std::to_string(dim),
                            std::to_string(dim)});
    }
    return spec::Grid()
        .axis("workload", {"cholesky", "qr", "streamcluster"})
        .zip({"machine.cores", "mesh.width", "mesh.height"},
             std::move(coreRows))
        .axis("runtime", {"sw", "tdm"})
        .label("{workload}/c{machine.cores}/{runtime}");
}

/**
 * Memory/power sensitivity ablation: each (workload, runtime) point
 * swept over L1 capacity and active-core power. Every 9-point cell
 * shares one warm prefix (only `mem.*` / `power.*` keys vary), so this
 * is the warm-start fork showcase: the engine simulates each warmup
 * once and forks, where a cold engine simulates all 36 points from
 * tick 0. BENCH_PR*.json records the A/B wall-clock.
 */
spec::Grid
ablationSensitivityGrid()
{
    return spec::Grid()
        .axis("workload", {"cholesky", "lu"})
        .axis("runtime", {"sw", "tdm"})
        .axis("mem.l1_bytes", {"16384", "32768", "65536"})
        .axis("power.active_w", {"0.6", "0.9", "1.2"})
        .label("{workload}/{runtime}/l1_{mem.l1_bytes}"
               "/w{power.active_w}");
}

void
registerGrid(const std::string &name, const std::string &description,
             spec::Grid (*build)())
{
    registerCampaign(
        name, description,
        [name, description, build] {
            return build().toCampaign(name, description);
        },
        [build] { return build().size(); });
}

} // namespace

namespace detail {

void
registerBuiltinCampaigns()
{
    static const bool once = [] {
        registerGrid("fig12",
                     "Fig. 12: scheduler sweep under SW and TDM",
                     fig12Grid);
        registerGrid("fig13",
                     "Fig. 13: Carbon / Task Superscalar / TDM "
                     "vs the SW baseline",
                     fig13Grid);
        registerGrid("ablation_scaling",
                     "Core-count scaling ablation: SW vs TDM at "
                     "8-64 cores",
                     ablationScalingGrid);
        registerGrid("ablation_sensitivity",
                     "Memory/power sensitivity ablation: L1 size x "
                     "active watts per runtime (warm-fork showcase)",
                     ablationSensitivityGrid);
        return true;
    }();
    (void)once;
}

} // namespace detail

} // namespace tdm::driver::campaign
