#include "driver/campaign/result_cache.hh"

namespace tdm::driver::campaign {

namespace {

/** Internal key: schema version + canonical fingerprint. */
std::string
versionedKey(const std::string &key)
{
    return "schema=" + std::to_string(ResultCache::kSchemaVersion) + ";"
         + key;
}

} // namespace

std::optional<RunSummary>
ResultCache::lookup(const std::string &key)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = map_.find(versionedKey(key));
    if (it == map_.end()) {
        ++misses_;
        return std::nullopt;
    }
    ++hits_;
    return it->second;
}

void
ResultCache::store(const std::string &key, const RunSummary &summary)
{
    std::lock_guard<std::mutex> lock(mutex_);
    map_[versionedKey(key)] = summary;
}

std::size_t
ResultCache::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return map_.size();
}

std::uint64_t
ResultCache::hits() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return hits_;
}

std::uint64_t
ResultCache::misses() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return misses_;
}

void
ResultCache::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    map_.clear();
    hits_ = 0;
    misses_ = 0;
}

} // namespace tdm::driver::campaign
