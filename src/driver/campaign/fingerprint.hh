/**
 * @file
 * Canonical fingerprinting of experiments.
 *
 * Two Experiments that would produce byte-identical simulations map to
 * the same fingerprint, so the campaign engine can deduplicate points
 * through its result cache. The fingerprint is exactly the canonical
 * experiment-spec serialization (driver/spec's binding registry covers
 * every field the simulation consumes), so cache keys read as specs:
 * "dmu.tat_entries=2048;...;workload=cholesky;...".
 */

#ifndef TDM_DRIVER_CAMPAIGN_FINGERPRINT_HH
#define TDM_DRIVER_CAMPAIGN_FINGERPRINT_HH

#include <string>

#include "driver/experiment.hh"
#include "sim/config.hh"

namespace tdm::driver::campaign {

/**
 * Flat canonical description of @p exp: spec::canonicalSpec. Applies
 * the same normalization run() applies (implied TDM-optimal
 * granularity) and resolves workload short names, so equivalent
 * experiments serialize identically. Doubles render as the shortest
 * decimal that round-trips bit-exactly. Throws spec::SpecError if the
 * workload name is unknown.
 */
sim::Config canonicalConfig(const Experiment &exp);

/** Full canonical key of @p exp; collision-free cache key. */
std::string fingerprint(const Experiment &exp);

/** Short FNV-1a 64-bit hex digest of fingerprint(), for display. */
std::string fingerprintDigest(const Experiment &exp);

/** Zero-padded 16-char hex digest of an already-built fingerprint. */
std::string digestOfKey(const std::string &key);

/** FNV-1a 64-bit hash of an arbitrary string. */
std::uint64_t fnv1a64(const std::string &s);

} // namespace tdm::driver::campaign

#endif // TDM_DRIVER_CAMPAIGN_FINGERPRINT_HH
