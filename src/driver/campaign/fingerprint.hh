/**
 * @file
 * Canonical fingerprinting of experiments.
 *
 * Two Experiments that would produce byte-identical simulations map to
 * the same fingerprint, so the campaign engine can deduplicate points
 * through its result cache. The fingerprint covers everything the
 * simulation consumes: the (canonicalized) workload name and parameters,
 * the runtime type, the effective scheduler, and every field of the
 * machine configuration.
 */

#ifndef TDM_DRIVER_CAMPAIGN_FINGERPRINT_HH
#define TDM_DRIVER_CAMPAIGN_FINGERPRINT_HH

#include <string>

#include "driver/experiment.hh"
#include "sim/config.hh"

namespace tdm::driver::campaign {

/**
 * Flat canonical description of @p exp. Applies the same normalization
 * run() applies (scheduler override, implied TDM-optimal granularity)
 * and resolves workload short names, so equivalent experiments
 * serialize identically. Doubles are rendered as hexfloats to preserve
 * their exact bits. Fatal if the workload name is unknown (matching
 * driver::run).
 */
sim::Config canonicalConfig(const Experiment &exp);

/** Full canonical key of @p exp; collision-free cache key. */
std::string fingerprint(const Experiment &exp);

/** Short FNV-1a 64-bit hex digest of fingerprint(), for display. */
std::string fingerprintDigest(const Experiment &exp);

/** Zero-padded 16-char hex digest of an already-built fingerprint. */
std::string digestOfKey(const std::string &key);

/** FNV-1a 64-bit hash of an arbitrary string. */
std::uint64_t fnv1a64(const std::string &s);

} // namespace tdm::driver::campaign

#endif // TDM_DRIVER_CAMPAIGN_FINGERPRINT_HH
