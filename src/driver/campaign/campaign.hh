/**
 * @file
 * Named experiment campaigns.
 *
 * A Campaign is a named, ordered set of sweep points — typically all
 * the runs behind one paper figure or ablation. Campaigns register
 * under a name (e.g. "fig12") so the campaign_run CLI and the bench
 * binaries can build and execute them on the campaign engine.
 */

#ifndef TDM_DRIVER_CAMPAIGN_CAMPAIGN_HH
#define TDM_DRIVER_CAMPAIGN_CAMPAIGN_HH

#include <functional>
#include <string>
#include <vector>

#include "driver/sweep.hh"

namespace tdm::driver::campaign {

/** A named, ordered set of experiment points. */
struct Campaign
{
    std::string name;
    std::string description;
    std::vector<SweepPoint> points;
};

/** Builds a campaign's points on demand. */
using CampaignFactory = std::function<Campaign()>;

/** Register @p factory under @p name; later registrations win. */
void registerCampaign(const std::string &name,
                      const std::string &description,
                      CampaignFactory factory);

/** Registered names, sorted, with their descriptions. */
std::vector<std::pair<std::string, std::string>> campaignList();

/** Whether @p name is registered. */
bool hasCampaign(const std::string &name);

/** Build the campaign registered as @p name; fatal if unknown. */
Campaign makeCampaign(const std::string &name);

/**
 * Standard "workload/runtime/scheduler" point label used by the
 * built-in campaigns and their consumers.
 */
std::string pointLabel(const std::string &workload,
                       const std::string &runtime,
                       const std::string &scheduler);

} // namespace tdm::driver::campaign

#endif // TDM_DRIVER_CAMPAIGN_CAMPAIGN_HH
