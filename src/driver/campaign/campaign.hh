/**
 * @file
 * Named experiment campaigns.
 *
 * A Campaign is a named, ordered set of sweep points — typically all
 * the runs behind one paper figure or ablation. Campaigns register
 * under a name (e.g. "fig12") so the campaign_run CLI and the bench
 * binaries can build and execute them on the campaign engine.
 */

#ifndef TDM_DRIVER_CAMPAIGN_CAMPAIGN_HH
#define TDM_DRIVER_CAMPAIGN_CAMPAIGN_HH

#include <functional>
#include <string>
#include <vector>

#include "driver/sweep.hh"

namespace tdm::driver::campaign {

/** A named, ordered set of experiment points. */
struct Campaign
{
    std::string name;
    std::string description;
    std::vector<SweepPoint> points;

    /**
     * Spec-grid label template the points were rendered from, when the
     * campaign came from one ("{workload}/{runtime}/{scheduler}");
     * lets consumers re-render labels after mutating a point's
     * experiment (campaign_run --set) so labels never lie. Empty for
     * hand-assembled point lists.
     */
    std::string labelTemplate;

    /**
     * Comma-separated metric-key globs selecting the subtree each
     * point exports ("dmu.*,mesh.*"); empty exports the full tree.
     * Set by the `metrics` directive of *.campaign files and
     * overridden by campaign_run --metrics.
     */
    std::string metrics;
};

/** Builds a campaign's points on demand. */
using CampaignFactory = std::function<Campaign()>;

/** Cheap point-count estimator (e.g. a grid's axis-size product). */
using CampaignCounter = std::function<std::size_t()>;

/**
 * Register @p factory under @p name; later registrations win. When
 * @p counter is provided, listing point counts never expands the
 * campaign's points.
 */
void registerCampaign(const std::string &name,
                      const std::string &description,
                      CampaignFactory factory,
                      CampaignCounter counter = nullptr);

/** Registered names, sorted, with their descriptions. */
std::vector<std::pair<std::string, std::string>> campaignList();

/** Whether @p name is registered. */
bool hasCampaign(const std::string &name);

/** Point count of @p name — via the registered counter when present,
 *  so listing stays cheap; fatal if unknown. */
std::size_t campaignPointCount(const std::string &name);

/** Build the campaign registered as @p name; fatal if unknown, naming
 *  the closest registered campaigns. */
Campaign makeCampaign(const std::string &name);

/**
 * Standard "workload/runtime/scheduler" point label used by the
 * built-in campaigns and their consumers.
 */
std::string pointLabel(const std::string &workload,
                       const std::string &runtime,
                       const std::string &scheduler);

} // namespace tdm::driver::campaign

#endif // TDM_DRIVER_CAMPAIGN_CAMPAIGN_HH
