#include "driver/graph_cache.hh"

#include <bit>
#include <sstream>

#include "core/runtime_model.hh"
#include "workloads/registry.hh"

namespace tdm::driver {

wl::WorkloadParams
effectiveParams(const Experiment &exp)
{
    wl::WorkloadParams params = exp.params;
    if (params.granularity == 0.0
        && core::traitsOf(exp.runtime).usesDmu())
        params.tdmOptimal = true;
    return params;
}

std::string
graphKey(const Experiment &exp)
{
    const wl::WorkloadParams p = effectiveParams(exp);
    std::ostringstream key;
    // Doubles serialize as their bit patterns: exact, locale-free, and
    // collision-free — this key must never conflate two graphs.
    key << wl::findWorkload(exp.workload).name
        << ";granularity=" << std::hex
        << std::bit_cast<std::uint64_t>(p.granularity)
        << ";tdm_optimal=" << (p.tdmOptimal ? 1 : 0)
        << ";seed=" << p.seed << ";duration_noise="
        << std::bit_cast<std::uint64_t>(p.durationNoise);
    return key.str();
}

std::shared_ptr<const rt::TaskGraph>
buildGraph(const Experiment &exp)
{
    return std::make_shared<const rt::TaskGraph>(
        wl::buildWorkload(exp.workload, effectiveParams(exp)));
}

std::shared_ptr<const rt::TaskGraph>
GraphCache::obtain(const Experiment &exp)
{
    const std::string key = graphKey(exp);
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = map_.find(key);
        if (it != map_.end()) {
            ++hits_;
            return it->second;
        }
    }
    // Build outside the lock: graph construction is the expensive part
    // and is pure, so a rare duplicate build only wastes work, never
    // correctness. First publisher wins so all consumers share one
    // instance.
    std::shared_ptr<const rt::TaskGraph> built = buildGraph(exp);
    std::lock_guard<std::mutex> lock(mutex_);
    auto [it, fresh] = map_.emplace(key, std::move(built));
    if (fresh)
        ++builds_;
    else
        ++hits_;
    return it->second;
}

std::uint64_t
GraphCache::builds() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return builds_;
}

std::size_t
GraphCache::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return map_.size();
}

std::uint64_t
GraphCache::hits() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return hits_;
}

void
GraphCache::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    map_.clear();
}

} // namespace tdm::driver
