#include "driver/fork_runner.hh"

#include "driver/graph_cache.hh"

namespace tdm::driver {

ForkGroupRunner::ForkGroupRunner(
    std::shared_ptr<const rt::TaskGraph> graph, bool enableFork)
    : graph_(std::move(graph)), enableFork_(enableFork)
{}

void
ForkGroupRunner::reset()
{
    machine_.reset();
    finalRoiKey_.clear();
}

RunSummary
ForkGroupRunner::cold(const Experiment &exp, const std::string &roi_key,
                      sim::TraceBuffer *trace_out)
{
    if (!graph_)
        graph_ = buildGraph(exp);
    machine_ = std::make_unique<core::Machine>(exp.config, graph_,
                                               exp.runtime);
    machine_->armForkCapture();
    core::MachineResult mr = machine_->run();
    finalRoiKey_ = roi_key;
    if (trace_out)
        *trace_out = machine_->takeTraceBuffer();
    return summarize(std::move(mr), *graph_);
}

RunSummary
ForkGroupRunner::run(const Experiment &exp, const std::string &roi_key,
                     sim::TraceBuffer *trace_out, bool *forked)
{
    if (forked)
        *forked = false;
    if (!enableFork_)
        return driver::run(exp, graph_, trace_out);

    // Cheapest snapshot first: an equal ROI fingerprint means the
    // member's whole trajectory matches the one in the final snapshot,
    // so only finalization re-runs under the member's power config.
    if (machine_ && machine_->hasFinalSnapshot()
        && roi_key == finalRoiKey_) {
        core::MachineResult mr = machine_->runFromFinal(exp.config);
        if (trace_out)
            *trace_out = machine_->takeTraceBuffer();
        if (forked)
            *forked = true;
        return summarize(std::move(mr), *graph_);
    }

    // Shared warm prefix: restore the warmup/ROI boundary and
    // re-simulate the ROI under the member's configuration. This also
    // refreshes the final snapshot, so the member's own ROI siblings
    // chain through the branch above.
    if (machine_ && machine_->hasWarmSnapshot()) {
        core::MachineResult mr = machine_->runFromWarm(exp.config);
        finalRoiKey_ = roi_key;
        if (trace_out)
            *trace_out = machine_->takeTraceBuffer();
        if (forked)
            *forked = true;
        return summarize(std::move(mr), *graph_);
    }

    // First member, or graceful degradation: capture may have been
    // declined (non-clonable pending event) — later members retry
    // against whatever snapshots this leg produces.
    return cold(exp, roi_key, trace_out);
}

} // namespace tdm::driver
