#include "driver/report/metric_reference.hh"

#include <map>
#include <ostream>
#include <string>

#include "core/machine.hh"
#include "workloads/registry.hh"

namespace tdm::driver::report {

namespace {

struct RefEntry
{
    sim::MetricKind kind;
    std::string desc;
    std::string runtimes; ///< which runtime models register the key
};

const char *
runtimeTag(core::RuntimeType rt)
{
    return core::traitsOf(rt).name;
}

void
collect(std::map<std::string, RefEntry> &out, core::RuntimeType rt)
{
    // The smallest graph that exercises every component keeps
    // discovery cheap; metric identity never depends on the workload.
    wl::WorkloadParams params;
    params.tdmOptimal = core::traitsOf(rt).usesDmu();
    rt::TaskGraph graph = wl::buildWorkload("cholesky", params);
    cpu::MachineConfig cfg;
    core::Machine m(cfg, graph, rt);
    for (const sim::MetricInfo &info : m.metrics().list()) {
        auto it =
            out.emplace(info.key, RefEntry{info.kind, info.desc, ""})
                .first;
        if (!it->second.runtimes.empty())
            it->second.runtimes += ", ";
        it->second.runtimes += runtimeTag(rt);
    }
}

} // namespace

void
writeMetricReference(std::ostream &os)
{
    std::map<std::string, RefEntry> entries;
    for (core::RuntimeType rt :
         {core::RuntimeType::Software, core::RuntimeType::Tdm,
          core::RuntimeType::Carbon, core::RuntimeType::TaskSuperscalar})
        collect(entries, rt);

    os << "| key | kind | runtimes | description |\n"
          "|-----|------|----------|-------------|\n";
    for (const auto &[key, e] : entries)
        os << "| `" << key << "` | " << sim::metricKindName(e.kind)
           << " | " << e.runtimes << " | " << e.desc << " |\n";

    os << "\n"
          "Distributions flatten into `.mean/.stdev/.min/.max/.count/"
          ".underflow/.overflow`\nsubkeys and averages gain a `.count` "
          "subkey in exported trees. Exports also\ncarry synthetic "
          "keys that exist outside the registry: `workload.num_tasks`"
          "\nand `workload.avg_task_us` (graph shape), and "
          "`window.{warmup,roi,drain}.*`\n(per-phase deltas of every "
          "counter, window-local means of averages and\ndistributions, "
          "plus each window's `ticks` length).\n";
}

} // namespace tdm::driver::report
