/**
 * @file
 * CSV export of campaign results: one row per job, campaigns
 * concatenated under a single header, for spreadsheet-style analysis.
 * The fixed summary columns are followed by one column per selected
 * metric key (the union across all jobs of each campaign's metric
 * pattern); a job lacking a key leaves the cell empty.
 */

#ifndef TDM_DRIVER_REPORT_CSV_WRITER_HH
#define TDM_DRIVER_REPORT_CSV_WRITER_HH

#include <ostream>
#include <vector>

#include "driver/campaign/engine.hh"

namespace tdm::driver::report {

/** Write a header row plus one row per job across all campaigns. */
void writeCsv(std::ostream &os,
              const std::vector<campaign::CampaignResult> &campaigns);

/** Convenience: a single campaign. */
void writeCsv(std::ostream &os, const campaign::CampaignResult &c);

/** Quote @p s as a CSV field when it needs quoting. */
std::string csvField(const std::string &s);

} // namespace tdm::driver::report

#endif // TDM_DRIVER_REPORT_CSV_WRITER_HH
