#include "driver/report/aggregate.hh"

#include <cmath>
#include <iomanip>
#include <sstream>

namespace tdm::driver::report {

double
geomean(const std::vector<double> &values)
{
    double acc = 0.0;
    std::size_t n = 0;
    for (double v : values) {
        if (v > 0.0) {
            acc += std::log(v);
            ++n;
        }
    }
    return n ? std::exp(acc / static_cast<double>(n)) : 0.0;
}

double
mean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double s = 0.0;
    for (double v : values)
        s += v;
    return s / static_cast<double>(values.size());
}

std::string
percent(double ratio_minus_one, int precision)
{
    std::ostringstream oss;
    oss << std::fixed << std::setprecision(precision)
        << ratio_minus_one * 100.0 << "%";
    return oss.str();
}

} // namespace tdm::driver::report
