/**
 * @file
 * JSON export of campaign results: one document per run, with campaign
 * totals (wall clock, cache hits) and the full per-job metric set, for
 * downstream plotting/analysis pipelines.
 */

#ifndef TDM_DRIVER_REPORT_JSON_WRITER_HH
#define TDM_DRIVER_REPORT_JSON_WRITER_HH

#include <ostream>
#include <vector>

#include "driver/campaign/engine.hh"

namespace tdm::driver::report {

/** Write several campaigns as one {"campaigns": [...]} document. */
void writeJson(std::ostream &os,
               const std::vector<campaign::CampaignResult> &campaigns);

/** Convenience: a single campaign. */
void writeJson(std::ostream &os, const campaign::CampaignResult &c);

/** JSON-escape @p s (without surrounding quotes). */
std::string jsonEscape(const std::string &s);

/**
 * Write @p v as a JSON number: finite doubles round-trip bit-exactly
 * (17 significant digits); non-finite values render as null. The one
 * formatter shared by the file export and the service protocol, so a
 * metric serializes to identical bytes on every path.
 */
void jsonNumber(std::ostream &os, double v);

} // namespace tdm::driver::report

#endif // TDM_DRIVER_REPORT_JSON_WRITER_HH
