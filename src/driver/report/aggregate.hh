/**
 * @file
 * Cross-run aggregation helpers for reports and bench tables
 * (geomean/mean/percent). Part of the driver/report module alongside
 * the JSON/CSV writers and the metric-key reference; this used to be
 * a stray top-level driver/report.hh.
 */

#ifndef TDM_DRIVER_REPORT_AGGREGATE_HH
#define TDM_DRIVER_REPORT_AGGREGATE_HH

#include <string>
#include <vector>

namespace tdm::driver::report {

/** Geometric mean; ignores non-positive entries. */
double geomean(const std::vector<double> &values);

/** Arithmetic mean. */
double mean(const std::vector<double> &values);

/** "12.3%" style formatting of a ratio-1. */
std::string percent(double ratio_minus_one, int precision = 1);

} // namespace tdm::driver::report

#endif // TDM_DRIVER_REPORT_AGGREGATE_HH
