/**
 * @file
 * Chrome trace-event JSON rendering of a sim::TraceBuffer.
 *
 * The output is the standard trace-event format (JSON Object Format:
 * {"traceEvents": [...]}) loadable directly in Perfetto or
 * chrome://tracing: one process per run, one thread track per core,
 * complete-span events ("ph":"X") for segments, thread/process
 * instants ("ph":"i") for point events, and counter tracks ("ph":"C")
 * for occupancy series. Timestamps are microseconds of simulated time
 * (ticks at the 2 GHz core clock).
 */

#ifndef TDM_DRIVER_REPORT_TRACE_WRITER_HH
#define TDM_DRIVER_REPORT_TRACE_WRITER_HH

#include <ostream>
#include <string>

#include "runtime/task_graph.hh"
#include "sim/trace.hh"

namespace tdm::driver::report {

/** Run facts the trace JSON labels itself with. */
struct TraceMeta
{
    /** Process name in the trace UI (e.g. "cholesky on tdm+fifo"). */
    std::string processName;

    /** Core tracks to declare (thread-name metadata). */
    unsigned numCores = 0;

    /** Optional task graph: names exec spans by kernel tag. */
    const rt::TaskGraph *graph = nullptr;
};

/** Render @p buf as Chrome trace-event JSON. */
void writeChromeTrace(std::ostream &os, const sim::TraceBuffer &buf,
                      const TraceMeta &meta);

/** Markdown reference of every trace event/counter the machine can
 *  record (campaign_run --trace-keys; the README section is this
 *  output). */
void writeTraceEventReference(std::ostream &os);

} // namespace tdm::driver::report

#endif // TDM_DRIVER_REPORT_TRACE_WRITER_HH
