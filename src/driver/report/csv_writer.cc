#include "driver/report/csv_writer.hh"

#include <iomanip>
#include <sstream>

namespace tdm::driver::report {

std::string
csvField(const std::string &s)
{
    // RFC 4180: quote fields containing separators, quotes, or either
    // line-break character (a bare \r corrupts the row structure for
    // CRLF-aware readers just like \n does).
    if (s.find_first_of(",\"\n\r") == std::string::npos)
        return s;
    std::string out = "\"";
    for (char ch : s) {
        if (ch == '"')
            out += '"';
        out += ch;
    }
    out += '"';
    return out;
}

namespace {

void
writeRows(std::ostream &os, const campaign::CampaignResult &c)
{
    for (const campaign::JobResult &j : c.jobs) {
        const RunSummary &s = j.summary;
        std::ostringstream row;
        row << std::setprecision(17);
        row << csvField(c.name) << ',' << csvField(j.label) << ','
            << j.digest << ',' << (j.cacheHit ? 1 : 0) << ','
            << (j.ok() ? 1 : 0) << ',' << csvField(j.error) << ','
            << j.wallMs << ',' << (s.completed ? 1 : 0) << ','
            << s.makespan << ',' << s.timeMs << ',' << s.energyJ << ','
            << s.edp << ',' << s.avgWatts << ',' << s.numTasks << ','
            << s.avgTaskUs << ',' << s.machine.tasksExecuted << ','
            << s.machine.dmuAccesses << ',' << s.machine.dmuBlockedOps
            << ',' << s.machine.steals << ','
            << s.machine.masterCreationFraction;
        os << row.str() << '\n';
    }
}

} // namespace

void
writeCsv(std::ostream &os,
         const std::vector<campaign::CampaignResult> &campaigns)
{
    os << "campaign,label,digest,cache_hit,ok,error,wall_ms,completed,"
          "makespan,time_ms,energy_j,edp,avg_watts,num_tasks,"
          "avg_task_us,tasks_executed,dmu_accesses,dmu_blocked_ops,"
          "steals,master_creation_fraction\n";
    for (const campaign::CampaignResult &c : campaigns)
        writeRows(os, c);
}

void
writeCsv(std::ostream &os, const campaign::CampaignResult &c)
{
    writeCsv(os, std::vector<campaign::CampaignResult>{c});
}

} // namespace tdm::driver::report
