#include "driver/report/csv_writer.hh"

#include <iomanip>
#include <set>
#include <sstream>

namespace tdm::driver::report {

std::string
csvField(const std::string &s)
{
    // RFC 4180: quote fields containing separators, quotes, or either
    // line-break character (a bare \r corrupts the row structure for
    // CRLF-aware readers just like \n does).
    if (s.find_first_of(",\"\n\r") == std::string::npos)
        return s;
    std::string out = "\"";
    for (char ch : s) {
        if (ch == '"')
            out += '"';
        out += ch;
    }
    out += '"';
    return out;
}

namespace {

/**
 * Union of the metric keys every job would export under its
 * campaign's selection pattern: the CSV metric columns. One shared
 * header means a job lacking a key (different runtime model) gets an
 * empty cell instead of a ragged row.
 */
std::vector<std::string>
metricColumns(const std::vector<campaign::CampaignResult> &campaigns)
{
    std::set<std::string> keys;
    for (const campaign::CampaignResult &c : campaigns)
        for (const campaign::JobResult &j : c.jobs) {
            const sim::MetricSet sel =
                j.summary.metrics().select(c.metricsPattern);
            for (const auto &[k, v] : sel.entries())
                keys.insert(k);
        }
    return {keys.begin(), keys.end()};
}

void
writeRows(std::ostream &os, const campaign::CampaignResult &c,
          const std::vector<std::string> &metric_cols)
{
    for (const campaign::JobResult &j : c.jobs) {
        const RunSummary &s = j.summary;
        // Fill cells from this campaign's own selection, not the full
        // tree: when campaigns with different patterns share the
        // union header, a row must stay empty in columns its pattern
        // excluded.
        const sim::MetricSet sel =
            s.metrics().select(c.metricsPattern);
        std::ostringstream row;
        row << std::setprecision(17);
        row << csvField(c.name) << ',' << csvField(j.label) << ','
            << j.digest << ',' << (j.cacheHit ? 1 : 0) << ','
            << campaign::jobSourceName(j.source) << ','
            << (j.ok() ? 1 : 0) << ',' << csvField(j.error) << ','
            << j.wallMs << ',' << csvField(j.tracePath) << ','
            << (s.completed ? 1 : 0) << ','
            << s.makespan << ',' << s.timeMs << ',' << s.energyJ << ','
            << s.edp << ',' << s.avgWatts << ',' << s.numTasks << ','
            << s.avgTaskUs << ',' << s.machine.tasksExecuted << ','
            << s.machine.dmuAccesses << ',' << s.machine.dmuBlockedOps
            << ',' << s.machine.steals << ','
            << s.machine.masterCreationFraction;
        for (const std::string &k : metric_cols) {
            row << ',';
            if (sel.contains(k))
                row << sel.get(k);
        }
        os << row.str() << '\n';
    }
}

} // namespace

void
writeCsv(std::ostream &os,
         const std::vector<campaign::CampaignResult> &campaigns)
{
    const std::vector<std::string> metric_cols =
        metricColumns(campaigns);
    os << "campaign,label,digest,cache_hit,source,ok,error,wall_ms,"
          "trace_path,"
          "completed,"
          "makespan,time_ms,energy_j,edp,avg_watts,num_tasks,"
          "avg_task_us,tasks_executed,dmu_accesses,dmu_blocked_ops,"
          "steals,master_creation_fraction";
    for (const std::string &k : metric_cols)
        os << ',' << csvField(k);
    os << '\n';
    for (const campaign::CampaignResult &c : campaigns)
        writeRows(os, c, metric_cols);
}

void
writeCsv(std::ostream &os, const campaign::CampaignResult &c)
{
    writeCsv(os, std::vector<campaign::CampaignResult>{c});
}

} // namespace tdm::driver::report
