#include "driver/report/trace_writer.hh"

#include <iomanip>
#include <sstream>

#include "dmu/dmu.hh"
#include "driver/report/json_writer.hh"
#include "sim/types.hh"

namespace tdm::driver::report {

namespace {

/** Sentinel `a` value of scheduling spans that came back empty. */
constexpr std::uint32_t noTask = UINT32_MAX;

/** Ticks -> microseconds with sub-cycle resolution preserved
 *  (2 GHz: one tick is 0.0005 us). */
std::string
usOf(sim::Tick t)
{
    std::ostringstream oss;
    oss << std::fixed << std::setprecision(4) << sim::ticksToUs(t);
    return oss.str();
}

std::uint64_t
counterValue(const sim::TraceRecord &r)
{
    return (static_cast<std::uint64_t>(r.b) << 32) | r.a;
}

void
writeArgs(std::ostream &os, const sim::TraceRecord &r,
          const TraceMeta &meta)
{
    using TP = sim::TracePoint;
    switch (static_cast<TP>(r.point)) {
    case TP::TaskCreate:
    case TP::TaskFinish:
    case TP::TaskRetire:
        os << "{\"task\":" << r.a << "}";
        break;
    case TP::TaskReady:
        os << "{\"task\":" << r.a << ",\"successors\":" << r.b << "}";
        break;
    case TP::TaskExec:
        os << "{\"task\":" << r.a << ",\"kernel\":" << r.b;
        if (meta.graph && r.a < meta.graph->numTasks())
            os << ",\"deps\":" << meta.graph->task(r.a).deps.size();
        os << "}";
        break;
    case TP::SchedPop:
    case TP::SchedSteal:
    case TP::SchedGetReady:
        if (r.a == noTask)
            os << "{\"empty\":true}";
        else
            os << "{\"task\":" << r.a << "}";
        break;
    case TP::DmuBlocked:
        os << "{\"task\":" << r.a << ",\"reason\":\""
           << dmu::toString(static_cast<dmu::BlockReason>(r.b))
           << "\"}";
        break;
    case TP::NocRoundTrip:
        os << "{\"latency_cycles\":" << r.a << ",\"hops\":" << r.b
           << "}";
        break;
    case TP::MemRegionMiss:
        os << "{\"l1_misses\":" << r.a << ",\"l2_misses\":" << r.b
           << "}";
        break;
    default:
        os << "{}";
        break;
    }
}

} // namespace

void
writeChromeTrace(std::ostream &os, const sim::TraceBuffer &buf,
                 const TraceMeta &meta)
{
    os << "{\"traceEvents\":[\n";
    bool first = true;
    auto sep = [&] {
        if (!first)
            os << ",\n";
        first = false;
    };

    // Metadata: the run is one process; each core is a thread track
    // (tid = core + 1, so tid 0 stays free for process-scoped rows).
    sep();
    os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
          "\"args\":{\"name\":\""
       << jsonEscape(meta.processName) << "\"}}";
    for (unsigned c = 0; c < meta.numCores; ++c) {
        sep();
        os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,"
              "\"tid\":"
           << (c + 1) << ",\"args\":{\"name\":\"core " << c
           << (c == 0 ? " (master)" : "") << "\"}}";
        sep();
        os << "{\"name\":\"thread_sort_index\",\"ph\":\"M\",\"pid\":1,"
              "\"tid\":"
           << (c + 1) << ",\"args\":{\"sort_index\":" << c << "}}";
    }

    buf.forEach([&](const sim::TraceRecord &r) {
        const sim::TracePointInfo &info =
            sim::tracePointInfo(static_cast<sim::TracePoint>(r.point));
        sep();
        os << "{\"name\":\"" << info.name << "\",\"cat\":\""
           << sim::traceCatName(info.cat) << "\",\"pid\":1";
        switch (info.kind) {
        case sim::TraceKind::Span:
            os << ",\"tid\":" << (r.core + 1) << ",\"ph\":\"X\",\"ts\":"
               << usOf(r.tick) << ",\"dur\":" << usOf(r.dur)
               << ",\"args\":";
            writeArgs(os, r, meta);
            break;
        case sim::TraceKind::Instant:
            if (r.core == sim::traceNoCore)
                os << ",\"tid\":0,\"ph\":\"i\",\"s\":\"p\"";
            else
                os << ",\"tid\":" << (r.core + 1)
                   << ",\"ph\":\"i\",\"s\":\"t\"";
            os << ",\"ts\":" << usOf(r.tick) << ",\"args\":";
            writeArgs(os, r, meta);
            break;
        case sim::TraceKind::Counter:
            os << ",\"tid\":0,\"ph\":\"C\",\"ts\":" << usOf(r.tick)
               << ",\"args\":{\"value\":" << counterValue(r) << "}";
            break;
        }
        os << "}";
    });

    os << "\n],\"displayTimeUnit\":\"ms\",\"otherData\":{"
          "\"clock_ghz\":2,\"records\":"
       << buf.size() << ",\"dropped\":" << buf.dropped() << "}}\n";
}

void
writeTraceEventReference(std::ostream &os)
{
    os << "| event | category | kind | description |\n";
    os << "|---|---|---|---|\n";
    const auto n = static_cast<std::size_t>(sim::TracePoint::NumPoints);
    for (std::size_t i = 0; i < n; ++i) {
        const sim::TracePointInfo &info =
            sim::tracePointInfo(static_cast<sim::TracePoint>(i));
        const char *kind = info.kind == sim::TraceKind::Span ? "span"
                           : info.kind == sim::TraceKind::Instant
                               ? "instant"
                               : "counter";
        os << "| `" << info.name << "` | "
           << sim::traceCatName(info.cat) << " | " << kind << " | "
           << info.doc << " |\n";
    }
}

} // namespace tdm::driver::report
