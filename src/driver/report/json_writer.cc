#include "driver/report/json_writer.hh"

#include <cmath>
#include <iomanip>
#include <sstream>

namespace tdm::driver::report {

void
jsonNumber(std::ostream &os, double v)
{
    if (!std::isfinite(v)) {
        os << "null";
        return;
    }
    std::ostringstream oss;
    oss << std::setprecision(17) << v;
    os << oss.str();
}

namespace {

/** Finite doubles round-trip at max_digits10; non-finite become null. */
void
num(std::ostream &os, double v)
{
    jsonNumber(os, v);
}

void
writeJob(std::ostream &os, const campaign::JobResult &j,
         const std::string &metrics_pattern, const char *indent)
{
    const RunSummary &s = j.summary;
    os << indent << "{\n";
    os << indent << "  \"label\": \"" << jsonEscape(j.label) << "\",\n";
    os << indent << "  \"digest\": \"" << jsonEscape(j.digest) << "\",\n";
    os << indent << "  \"spec\": {";
    {
        bool first = true;
        for (const auto &[k, v] : j.spec.entries()) {
            os << (first ? "\n" : ",\n") << indent << "    \""
               << jsonEscape(k) << "\": \"" << jsonEscape(v) << "\"";
            first = false;
        }
        if (!first)
            os << "\n" << indent << "  ";
    }
    os << "},\n";
    os << indent << "  \"cache_hit\": " << (j.cacheHit ? "true" : "false")
       << ",\n";
    os << indent << "  \"source\": \"" << campaign::jobSourceName(j.source)
       << "\",\n";
    os << indent << "  \"ok\": " << (j.ok() ? "true" : "false") << ",\n";
    os << indent << "  \"error\": \"" << jsonEscape(j.error) << "\",\n";
    os << indent << "  \"wall_ms\": ";
    num(os, j.wallMs);
    os << ",\n";
    os << indent << "  \"trace_path\": \"" << jsonEscape(j.tracePath)
       << "\",\n";
    os << indent << "  \"completed\": "
       << (s.completed ? "true" : "false") << ",\n";
    os << indent << "  \"makespan\": " << s.makespan << ",\n";
    os << indent << "  \"time_ms\": ";
    num(os, s.timeMs);
    os << ",\n";
    os << indent << "  \"energy_j\": ";
    num(os, s.energyJ);
    os << ",\n";
    os << indent << "  \"edp\": ";
    num(os, s.edp);
    os << ",\n";
    os << indent << "  \"avg_watts\": ";
    num(os, s.avgWatts);
    os << ",\n";
    os << indent << "  \"num_tasks\": " << s.numTasks << ",\n";
    os << indent << "  \"avg_task_us\": ";
    num(os, s.avgTaskUs);
    os << ",\n";
    os << indent << "  \"tasks_executed\": " << s.machine.tasksExecuted
       << ",\n";
    os << indent << "  \"dmu_accesses\": " << s.machine.dmuAccesses
       << ",\n";
    os << indent << "  \"dmu_blocked_ops\": " << s.machine.dmuBlockedOps
       << ",\n";
    os << indent << "  \"steals\": " << s.machine.steals << ",\n";
    os << indent << "  \"master_creation_fraction\": ";
    num(os, s.machine.masterCreationFraction);
    os << ",\n";
    // The full (or selected) metric tree, flat dotted keys. This is
    // the machine-readable payload; the fixed fields above are the
    // historical view.
    os << indent << "  \"metrics\": {";
    {
        const sim::MetricSet selected =
            s.metrics().select(metrics_pattern);
        bool first = true;
        for (const auto &[k, v] : selected.entries()) {
            os << (first ? "\n" : ",\n") << indent << "    \""
               << jsonEscape(k) << "\": ";
            num(os, v);
            first = false;
        }
        if (!first)
            os << "\n" << indent << "  ";
    }
    os << "}\n" << indent << "}";
}

void
writeCampaign(std::ostream &os, const campaign::CampaignResult &c,
              const char *indent)
{
    os << indent << "{\n";
    os << indent << "  \"name\": \"" << jsonEscape(c.name) << "\",\n";
    os << indent << "  \"threads\": " << c.threads << ",\n";
    os << indent << "  \"wall_ms\": ";
    num(os, c.wallMs);
    os << ",\n";
    os << indent << "  \"sim_ms_total\": ";
    num(os, c.simMsTotal);
    os << ",\n";
    os << indent << "  \"cache_hits\": " << c.cacheHits << ",\n";
    os << indent << "  \"simulated\": " << c.simulated << ",\n";
    os << indent << "  \"from_memory\": " << c.fromMemory << ",\n";
    os << indent << "  \"from_disk\": " << c.fromDisk << ",\n";
    os << indent << "  \"from_inflight\": " << c.fromInflight << ",\n";
    os << indent << "  \"from_forked\": " << c.fromForked << ",\n";
    os << indent << "  \"warmups_shared\": " << c.warmupsShared
       << ",\n";
    os << indent << "  \"graph_builds\": " << c.graphBuilds << ",\n";
    os << indent << "  \"graph_shares\": " << c.graphShares << ",\n";
    os << indent << "  \"failures\": " << c.failures() << ",\n";
    os << indent << "  \"metrics_pattern\": \""
       << jsonEscape(c.metricsPattern) << "\",\n";
    os << indent << "  \"jobs\": [\n";
    for (std::size_t i = 0; i < c.jobs.size(); ++i) {
        writeJob(os, c.jobs[i], c.metricsPattern,
                 (std::string(indent) + "    ").c_str());
        os << (i + 1 < c.jobs.size() ? ",\n" : "\n");
    }
    os << indent << "  ]\n";
    os << indent << "}";
}

} // namespace

std::string
jsonEscape(const std::string &s)
{
    std::ostringstream oss;
    for (unsigned char ch : s) {
        switch (ch) {
        case '"': oss << "\\\""; break;
        case '\\': oss << "\\\\"; break;
        case '\n': oss << "\\n"; break;
        case '\r': oss << "\\r"; break;
        case '\t': oss << "\\t"; break;
        default:
            if (ch < 0x20)
                oss << "\\u" << std::hex << std::setw(4)
                    << std::setfill('0') << static_cast<int>(ch)
                    << std::dec;
            else
                oss << ch;
        }
    }
    return oss.str();
}

void
writeJson(std::ostream &os,
          const std::vector<campaign::CampaignResult> &campaigns)
{
    os << "{\n  \"campaigns\": [\n";
    for (std::size_t i = 0; i < campaigns.size(); ++i) {
        writeCampaign(os, campaigns[i], "    ");
        os << (i + 1 < campaigns.size() ? ",\n" : "\n");
    }
    os << "  ]\n}\n";
}

void
writeJson(std::ostream &os, const campaign::CampaignResult &c)
{
    writeJson(os, std::vector<campaign::CampaignResult>{c});
}

} // namespace tdm::driver::report
