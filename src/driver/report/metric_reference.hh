/**
 * @file
 * Generated metric-key reference (the output-side twin of the spec
 * key reference): every key the metric registry exposes, with its
 * kind and description, as a markdown table for the README.
 */

#ifndef TDM_DRIVER_REPORT_METRIC_REFERENCE_HH
#define TDM_DRIVER_REPORT_METRIC_REFERENCE_HH

#include <iosfwd>

namespace tdm::driver::report {

/**
 * Write the metric-key reference as markdown. The table is discovered,
 * not hand-maintained: a small machine is built per runtime model and
 * the union of their registries is listed (runtimes register different
 * schedulers' metrics — e.g. runtime.tracker.* only exists under the
 * software runtime). Synthetic export-time keys (workload.*,
 * window.*) are documented in a trailing note.
 */
void writeMetricReference(std::ostream &os);

} // namespace tdm::driver::report

#endif // TDM_DRIVER_REPORT_METRIC_REFERENCE_HH
