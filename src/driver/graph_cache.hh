/**
 * @file
 * Shared immutable task graphs.
 *
 * Building a workload TaskGraph is pure: the graph depends only on the
 * workload name and its effective WorkloadParams. A campaign of
 * hundreds of points therefore used to rebuild the same few graphs
 * hundreds of times — once per run() call. The GraphCache builds each
 * distinct (workload, effective params) graph exactly once, keyed by a
 * canonical serialization of exactly those inputs, and hands out
 * shared_ptr<const TaskGraph> views that any number of concurrently
 * running machines can read.
 */

#ifndef TDM_DRIVER_GRAPH_CACHE_HH
#define TDM_DRIVER_GRAPH_CACHE_HH

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "driver/experiment.hh"
#include "runtime/task_graph.hh"
#include "workloads/workload.hh"

namespace tdm::driver {

/**
 * The workload parameters @p exp's graph is actually built with:
 * run() implies the TDM-optimal default granularity for DMU runtimes,
 * so the same nominal params can denote two different graphs under
 * different runtimes. Every graph consumer must normalize through
 * this — it is what makes the cache key honest.
 */
wl::WorkloadParams effectiveParams(const Experiment &exp);

/**
 * Canonical key of the graph @p exp runs on: full workload name plus
 * the bit-exact effective parameters. Two experiments with equal keys
 * build byte-identical graphs.
 */
std::string graphKey(const Experiment &exp);

/** Build @p exp's graph fresh (effective params applied), shared. */
std::shared_ptr<const rt::TaskGraph> buildGraph(const Experiment &exp);

/**
 * Thread-safe build-once store of immutable task graphs.
 */
class GraphCache
{
  public:
    /**
     * The graph for @p exp: served from the cache when an equal-key
     * graph exists, built (and published) otherwise.
     */
    std::shared_ptr<const rt::TaskGraph> obtain(const Experiment &exp);

    /** Distinct graphs built so far. */
    std::uint64_t builds() const;

    /** Graphs currently held. */
    std::size_t size() const;

    /** Lookups served without building. */
    std::uint64_t hits() const;

    void clear();

  private:
    mutable std::mutex mutex_;
    std::unordered_map<std::string,
                       std::shared_ptr<const rt::TaskGraph>> map_;
    std::uint64_t builds_ = 0;
    std::uint64_t hits_ = 0;
};

} // namespace tdm::driver

#endif // TDM_DRIVER_GRAPH_CACHE_HH
