/**
 * @file
 * Parameter-sweep helper: run the same experiment across a list of
 * configurations, collecting summaries.
 */

#ifndef TDM_DRIVER_SWEEP_HH
#define TDM_DRIVER_SWEEP_HH

#include <functional>
#include <vector>

#include "driver/experiment.hh"

namespace tdm::driver {

/** One point of a sweep: a label and a configured experiment. */
struct SweepPoint
{
    std::string label;
    Experiment exp;
};

/** Result of one sweep point. */
struct SweepResult
{
    std::string label;
    RunSummary summary;
};

/** Run every point in order. */
std::vector<SweepResult> runSweep(const std::vector<SweepPoint> &points);

/**
 * Convenience: sweep one mutator over a base experiment.
 * The mutator receives the index and a copy of the base to adjust.
 */
std::vector<SweepResult>
runSweep(const Experiment &base, const std::vector<std::string> &labels,
         const std::function<void(std::size_t, Experiment &)> &mutate);

} // namespace tdm::driver

#endif // TDM_DRIVER_SWEEP_HH
