#include "driver/sweep.hh"

namespace tdm::driver {

std::vector<SweepResult>
runSweep(const std::vector<SweepPoint> &points)
{
    std::vector<SweepResult> out;
    out.reserve(points.size());
    for (const SweepPoint &p : points)
        out.push_back(SweepResult{p.label, run(p.exp)});
    return out;
}

std::vector<SweepResult>
runSweep(const Experiment &base, const std::vector<std::string> &labels,
         const std::function<void(std::size_t, Experiment &)> &mutate)
{
    std::vector<SweepResult> out;
    out.reserve(labels.size());
    for (std::size_t i = 0; i < labels.size(); ++i) {
        Experiment e = base;
        mutate(i, e);
        out.push_back(SweepResult{labels[i], run(e)});
    }
    return out;
}

} // namespace tdm::driver
