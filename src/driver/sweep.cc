#include "driver/sweep.hh"

#include <stdexcept>

#include "driver/campaign/engine.hh"

namespace tdm::driver {

std::vector<SweepResult>
runSweep(const std::vector<SweepPoint> &points)
{
    // Thin sequential wrapper over the campaign engine: one worker
    // thread keeps the execution order (and therefore any side-channel
    // output) identical to the historical loop, while duplicated points
    // still dedup through the engine's cache.
    campaign::EngineOptions opts;
    opts.threads = 1;
    campaign::CampaignEngine engine(opts);
    campaign::CampaignResult rep = engine.run("sweep", points);

    std::vector<SweepResult> out;
    out.reserve(rep.jobs.size());
    for (const campaign::JobResult &j : rep.jobs) {
        // The historical loop let exceptions from run() propagate;
        // keep that contract. Incomplete runs (watchdog, deadlock)
        // still come back as completed=false summaries, as before.
        if (j.threw)
            throw std::runtime_error("sweep point '" + j.label
                                     + "': " + j.error);
        out.push_back(SweepResult{j.label, j.summary});
    }
    return out;
}

std::vector<SweepResult>
runSweep(const Experiment &base, const std::vector<std::string> &labels,
         const std::function<void(std::size_t, Experiment &)> &mutate)
{
    std::vector<SweepPoint> points;
    points.reserve(labels.size());
    for (std::size_t i = 0; i < labels.size(); ++i) {
        Experiment e = base;
        mutate(i, e);
        points.push_back(SweepPoint{labels[i], e});
    }
    return runSweep(points);
}

} // namespace tdm::driver
