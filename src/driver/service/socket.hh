/**
 * @file
 * Local-only stream sockets for the campaign service.
 *
 * Addresses are "unix:PATH" or "tcp:HOST:PORT" with HOST restricted to
 * the loopback interface — the service deliberately cannot listen on a
 * routable address (it executes submitted experiment specs; exposure
 * beyond the machine is an explicit non-goal). "tcp:127.0.0.1:0" binds
 * an ephemeral port, reported by Listener::boundPort() — this is how
 * tests and CI avoid port collisions.
 *
 * Socket wraps a connected fd with line-buffered reads (the protocol
 * is line-delimited) and EINTR/partial-write-safe sends; writes use
 * MSG_NOSIGNAL so a vanished peer surfaces as an error, not SIGPIPE.
 */

#ifndef TDM_DRIVER_SERVICE_SOCKET_HH
#define TDM_DRIVER_SERVICE_SOCKET_HH

#include <cstddef>
#include <cstdint>
#include <string>

namespace tdm::driver::service {

/** A parsed service address. */
struct Address
{
    bool isUnix = false;
    std::string path;        ///< unix socket path
    std::uint16_t port = 0;  ///< tcp port (0 = ephemeral)

    /** Canonical rendering ("unix:/run/x.sock", "tcp:127.0.0.1:7077"). */
    std::string display() const;
};

/** Parse "unix:PATH" / "tcp:HOST:PORT"; throws std::runtime_error on a
 *  malformed or non-loopback address. */
Address parseAddress(const std::string &text);

/** A connected stream socket (move-only RAII fd). */
class Socket
{
  public:
    Socket() = default;
    explicit Socket(int fd) : fd_(fd) {}
    ~Socket();

    Socket(Socket &&other) noexcept;
    Socket &operator=(Socket &&other) noexcept;
    Socket(const Socket &) = delete;
    Socket &operator=(const Socket &) = delete;

    bool valid() const { return fd_ >= 0; }
    int fd() const { return fd_; }

    /** Write all of @p data; false on any send error. */
    bool sendAll(const std::string &data);

    /** Next '\n'-terminated line (terminator stripped); false on EOF
     *  or error. A final unterminated line is returned as-is. */
    bool readLine(std::string &line);

    /** Raw read of up to @p cap bytes (EINTR-safe). Returns the byte
     *  count, 0 on EOF, -1 on error. Used by the HTTP layer, whose
     *  framing is not line-delimited; do not mix with readLine. */
    long readSome(char *buf, std::size_t cap);

    void close();

  private:
    int fd_ = -1;
    std::string buf_; ///< bytes read past the last returned line
};

/** A bound, listening socket. */
class Listener
{
  public:
    /** Bind and listen; throws std::runtime_error on failure. A unix
     *  listener removes a stale socket file at its path first, and
     *  unlinks the path on destruction. */
    explicit Listener(const Address &addr);
    ~Listener();

    Listener(const Listener &) = delete;
    Listener &operator=(const Listener &) = delete;

    /** Accept one connection (blocking); an invalid Socket after
     *  shutdownNow() or on error. */
    Socket accept();

    /** The actual bound address (ephemeral tcp port resolved). */
    const Address &address() const { return addr_; }
    std::uint16_t boundPort() const { return addr_.port; }

    /** Unblock accept() from another thread. */
    void shutdownNow();

  private:
    int fd_ = -1;
    Address addr_;
};

/** Connect to a service; throws std::runtime_error on failure. */
Socket connectTo(const Address &addr);

} // namespace tdm::driver::service

#endif // TDM_DRIVER_SERVICE_SOCKET_HH
