/**
 * @file
 * C++ client for the campaign service: turns a local Campaign into a
 * submit request, streams the responses, and reassembles a
 * CampaignResult — so campaign_run --server produces the same reports
 * (JSON/CSV/summary line) whether points ran locally or were served.
 *
 * Points are submitted by full canonical spec (every binding key), so
 * the server reconstructs bit-identical experiments and fingerprints
 * regardless of either side's defaults.
 */

#ifndef TDM_DRIVER_SERVICE_CLIENT_HH
#define TDM_DRIVER_SERVICE_CLIENT_HH

#include <string>

#include "driver/campaign/engine.hh"
#include "driver/service/protocol.hh"
#include "driver/service/socket.hh"

namespace tdm::driver::service {

/** A connected service client. Not thread-safe (one request at a
 *  time, like the protocol). */
class ServiceClient
{
  public:
    /** Connect to "unix:PATH" / "tcp:HOST:PORT"; throws
     *  std::runtime_error on connect failure. */
    explicit ServiceClient(const std::string &address);

    /**
     * Submit @p c and stream results. Returns the reassembled
     * CampaignResult (jobs in point order; dedup counters from the
     * server's done event). @p onJob, when set, fires per streamed
     * point in arrival order. Throws std::runtime_error on protocol
     * errors or a dropped connection; server-side per-point failures
     * come back inside the jobs, like a local run.
     */
    campaign::CampaignResult
    submit(const campaign::Campaign &c,
           const campaign::JobCallback &onJob = nullptr);

    /** Round-trip a ping; false when the server is unreachable. */
    bool ping();

    /** Server counters. Throws on protocol errors. */
    StatusInfo status();

    /** Ask the server to shut down (acknowledged with "bye"). */
    void shutdownServer();

  private:
    /** Send one line, read one response object. */
    JsonValue roundTrip(const std::string &request);

    Socket sock_;
    std::string address_;
};

} // namespace tdm::driver::service

#endif // TDM_DRIVER_SERVICE_CLIENT_HH
