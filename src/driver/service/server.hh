/**
 * @file
 * The campaign server: many clients, one engine, one store.
 *
 * Every client connection gets its own handler thread, but all
 * submissions run on one shared CampaignEngine, so deduplication is
 * global across clients: points hit the shared in-memory cache, then
 * the shared on-disk store, and identical points simulating *right
 * now* for another client are joined in flight instead of re-run (the
 * engine's claim table). N clients sweeping overlapping grids
 * therefore cost exactly one simulation per distinct canonical-spec
 * fingerprint — the service invariant the stress tests pin.
 *
 * Per-point results stream to the submitting client as the engine
 * resolves them, tagged with where each summary came from
 * (simulated / memory / disk / inflight).
 */

#ifndef TDM_DRIVER_SERVICE_SERVER_HH
#define TDM_DRIVER_SERVICE_SERVER_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "driver/campaign/engine.hh"
#include "driver/service/dashboard_api.hh"
#include "driver/service/http_server.hh"
#include "driver/service/progress_bus.hh"
#include "driver/service/protocol.hh"
#include "driver/service/socket.hh"
#include "driver/service/store.hh"

namespace tdm::driver::service {

struct ServerOptions
{
    campaign::EngineOptions engine;
    /** Persistent store directory; empty runs memory-only. */
    std::string storeDir;
    /** Log one line per connection / submission to stderr. */
    bool verbose = false;
    /**
     * HTTP dashboard address ("tcp:127.0.0.1:0", "unix:PATH"); empty
     * disables the dashboard entirely — no HTTP threads, no progress
     * bus, no per-event publication work. Loopback/unix only, like
     * the protocol listener.
     */
    std::string httpAddr;
};

/**
 * The server. Construction binds the listener (and opens the store);
 * serve() accepts and handles clients until a shutdown request or
 * stop(). Thread-safe counters feed the status op.
 */
class CampaignServer
{
  public:
    /** Throws std::runtime_error when the address cannot be bound or
     *  the store cannot be opened. */
    CampaignServer(const Address &addr, ServerOptions opts);
    ~CampaignServer();

    CampaignServer(const CampaignServer &) = delete;
    CampaignServer &operator=(const CampaignServer &) = delete;

    /** The bound address (ephemeral tcp ports resolved). */
    const Address &address() const { return listener_.address(); }

    /** Accept loop; returns once stopped. Joins all client threads. */
    void serve();

    /** Stop serving: unblocks accept(), closes live connections.
     *  Callable from any thread (including a handler). */
    void stop();

    /** Aggregate counters (for status and the daemon's exit report). */
    StatusInfo status() const;

    campaign::CampaignEngine &engine() { return *engine_; }
    ResultStore *store() { return store_.get(); }

    /** The dashboard's bound address; nullptr when --http is off. */
    const Address *httpAddress() const
    {
        return http_ ? &http_->address() : nullptr;
    }

    /** The progress bus; nullptr when --http is off. */
    ProgressBus *bus() { return bus_.get(); }

  private:
    void handleClient(Socket sock);
    void handleSubmit(Socket &sock, const SubmitRequest &req);

    ServerOptions opts_;
    std::unique_ptr<ResultStore> store_; ///< before engine_ (outlives)
    std::unique_ptr<campaign::CampaignEngine> engine_;
    Listener listener_;
    std::chrono::steady_clock::time_point started_;

    // Dashboard plumbing, all null without --http. Declaration order
    // is destruction-safety: http_ (threads calling into the others)
    // is declared last so it dies first.
    std::unique_ptr<ProgressBus> bus_;
    std::unique_ptr<CampaignRegistry> registry_;
    std::unique_ptr<Dashboard> dashboard_;
    std::unique_ptr<HttpServer> http_;

    std::atomic<bool> stopping_{false};
    std::atomic<std::uint64_t> nextId_{1};

    mutable std::mutex statsMutex_;
    std::uint64_t campaigns_ = 0;
    std::uint64_t points_ = 0;
    std::uint64_t simulated_ = 0;
    std::uint64_t fromMemory_ = 0;
    std::uint64_t fromDisk_ = 0;
    std::uint64_t fromInflight_ = 0;
    std::uint64_t fromForked_ = 0;

    std::mutex clientsMutex_;
    std::vector<int> clientFds_; ///< live connections, for stop()
    std::vector<std::thread> threads_;
};

} // namespace tdm::driver::service

#endif // TDM_DRIVER_SERVICE_SERVER_HH
