#include "driver/service/client.hh"

#include <sstream>
#include <stdexcept>

#include "driver/campaign/fingerprint.hh"
#include "driver/report/json_writer.hh"

namespace tdm::driver::service {

using report::jsonEscape;

ServiceClient::ServiceClient(const std::string &address)
    : sock_(connectTo(parseAddress(address))), address_(address)
{
}

JsonValue
ServiceClient::roundTrip(const std::string &request)
{
    if (!sock_.sendAll(request))
        throw std::runtime_error("campaign service " + address_ +
                                 ": send failed");
    std::string line;
    if (!sock_.readLine(line))
        throw std::runtime_error("campaign service " + address_ +
                                 ": connection closed");
    JsonValue response;
    std::string error;
    if (!parseJson(line, response, error))
        throw std::runtime_error("campaign service " + address_ +
                                 ": malformed response: " + error);
    return response;
}

bool
ServiceClient::ping()
{
    try {
        const JsonValue r = roundTrip("{\"op\":\"ping\"}\n");
        const JsonValue *ev = r.find("event");
        return ev && ev->asString() == "pong";
    } catch (const std::exception &) {
        return false;
    }
}

StatusInfo
ServiceClient::status()
{
    const JsonValue r = roundTrip("{\"op\":\"status\"}\n");
    const JsonValue *ev = r.find("event");
    if (!ev || ev->asString() != "status")
        throw std::runtime_error("campaign service " + address_ +
                                 ": unexpected status response");
    StatusInfo info;
    auto u64 = [&](const char *key, std::uint64_t &field) {
        if (const JsonValue *v = r.find(key))
            field = static_cast<std::uint64_t>(v->asNumber());
    };
    u64("campaigns", info.campaigns);
    u64("points", info.points);
    if (const JsonValue *served = r.find("served")) {
        auto pick = [&](const char *key, std::uint64_t &field) {
            if (const JsonValue *v = served->find(key))
                field = static_cast<std::uint64_t>(v->asNumber());
        };
        pick("simulated", info.simulated);
        pick("memory", info.fromMemory);
        pick("disk", info.fromDisk);
        pick("inflight", info.fromInflight);
        pick("forked", info.fromForked);
    }
    if (const JsonValue *v = r.find("cache_points"))
        info.cachePoints = static_cast<std::size_t>(v->asNumber());
    if (const JsonValue *v = r.find("inflight"))
        info.inflight = static_cast<std::size_t>(v->asNumber());
    if (const JsonValue *v = r.find("threads"))
        info.threads = static_cast<unsigned>(v->asNumber());
    if (const JsonValue *store = r.find("store");
        store && store->isObject()) {
        info.hasStore = true;
        if (const JsonValue *v = store->find("dir"))
            info.storeDir = v->asString();
        auto pick = [&](const char *key, std::uint64_t &field) {
            if (const JsonValue *v = store->find(key))
                field = static_cast<std::uint64_t>(v->asNumber());
        };
        if (const JsonValue *v = store->find("blobs"))
            info.storeBlobs = static_cast<std::size_t>(v->asNumber());
        pick("hits", info.storeHits);
        pick("misses", info.storeMisses);
        pick("stores", info.storeStores);
        pick("corrupt", info.storeCorrupt);
    }
    return info;
}

void
ServiceClient::shutdownServer()
{
    const JsonValue r = roundTrip("{\"op\":\"shutdown\"}\n");
    const JsonValue *ev = r.find("event");
    if (!ev || ev->asString() != "bye")
        throw std::runtime_error("campaign service " + address_ +
                                 ": unexpected shutdown response");
}

campaign::CampaignResult
ServiceClient::submit(const campaign::Campaign &c,
                      const campaign::JobCallback &onJob)
{
    // Canonical specs, computed once: they parameterize the request
    // and are grafted back onto the streamed jobs (point events do not
    // carry the spec map — both sides can derive it).
    std::vector<sim::Config> specs;
    specs.reserve(c.points.size());
    for (const SweepPoint &p : c.points)
        specs.push_back(campaign::canonicalConfig(p.exp));

    std::ostringstream req;
    req << "{\"op\":\"submit\",\"name\":\"" << jsonEscape(c.name)
        << "\",\"metrics\":\"" << jsonEscape(c.metrics)
        << "\",\"points\":[";
    for (std::size_t i = 0; i < c.points.size(); ++i) {
        req << (i ? "," : "") << "{\"label\":\""
            << jsonEscape(c.points[i].label) << "\",\"spec\":{";
        bool first = true;
        for (const auto &[k, v] : specs[i].entries()) {
            req << (first ? "" : ",") << "\"" << jsonEscape(k)
                << "\":\"" << jsonEscape(v) << "\"";
            first = false;
        }
        req << "}}";
    }
    req << "]}\n";

    if (!sock_.sendAll(req.str()))
        throw std::runtime_error("campaign service " + address_ +
                                 ": send failed");

    campaign::CampaignResult result;
    result.name = c.name;
    result.metricsPattern = c.metrics;
    result.jobs.resize(c.points.size());
    std::vector<bool> received(c.points.size(), false);
    std::size_t receivedCount = 0;

    std::string line;
    while (sock_.readLine(line)) {
        if (line.empty())
            continue;
        JsonValue event;
        std::string error;
        if (!parseJson(line, event, error))
            throw std::runtime_error("campaign service " + address_ +
                                     ": malformed event: " + error);
        const JsonValue *ev = event.find("event");
        const std::string kind = ev ? ev->asString() : "";
        if (kind == "accepted")
            continue;
        if (kind == "error") {
            const JsonValue *msg = event.find("message");
            throw std::runtime_error(
                "campaign service " + address_ + ": " +
                (msg ? msg->asString() : "unknown error"));
        }
        if (kind == "point") {
            campaign::JobResult job;
            std::size_t index = 0, total = 0;
            if (!decodePointEvent(event, job, index, total) ||
                index >= result.jobs.size())
                throw std::runtime_error("campaign service " +
                                         address_ +
                                         ": malformed point event");
            job.spec = specs[index];
            if (!received[index]) {
                received[index] = true;
                ++receivedCount;
            }
            result.jobs[index] = job;
            if (onJob)
                onJob(result.jobs[index], index, total);
            continue;
        }
        if (kind == "done") {
            auto u64 = [&](const char *key, std::uint64_t &field) {
                if (const JsonValue *v = event.find(key))
                    field =
                        static_cast<std::uint64_t>(v->asNumber());
            };
            u64("simulated", result.simulated);
            u64("cache_hits", result.cacheHits);
            u64("from_memory", result.fromMemory);
            u64("from_disk", result.fromDisk);
            u64("from_inflight", result.fromInflight);
            u64("from_forked", result.fromForked);
            u64("warmups_shared", result.warmupsShared);
            u64("graph_builds", result.graphBuilds);
            u64("graph_shares", result.graphShares);
            if (const JsonValue *v = event.find("threads"))
                result.threads =
                    static_cast<unsigned>(v->asNumber());
            if (const JsonValue *v = event.find("wall_ms"))
                result.wallMs = v->asNumber();
            if (receivedCount != result.jobs.size())
                throw std::runtime_error(
                    "campaign service " + address_ + ": done after " +
                    std::to_string(receivedCount) + "/" +
                    std::to_string(result.jobs.size()) + " points");
            return result;
        }
        throw std::runtime_error("campaign service " + address_ +
                                 ": unexpected event \"" + kind +
                                 "\"");
    }
    throw std::runtime_error("campaign service " + address_ +
                             ": connection closed mid-campaign");
}

} // namespace tdm::driver::service
