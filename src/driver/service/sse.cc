#include "driver/service/sse.hh"

#include <chrono>

namespace tdm::driver::service {

std::string
sseFrame(const std::string &name, const std::string &data)
{
    std::string out;
    out.reserve(data.size() + name.size() + 32);
    if (!name.empty()) {
        out += "event: ";
        out += name;
        out += '\n';
    }
    // One "data:" line per payload line; a trailing newline in the
    // payload contributes an empty data line, preserving the bytes
    // the consumer reassembles.
    std::size_t pos = 0;
    while (true) {
        const std::size_t nl = data.find('\n', pos);
        out += "data: ";
        out += data.substr(pos, nl == std::string::npos
                                    ? std::string::npos
                                    : nl - pos);
        out += '\n';
        if (nl == std::string::npos)
            break;
        pos = nl + 1;
        if (pos > data.size())
            break;
    }
    out += '\n';
    return out;
}

std::string
sseResponseHead()
{
    return "HTTP/1.1 200 OK\r\n"
           "Server: campaign_serve\r\n"
           "Content-Type: text/event-stream\r\n"
           "Cache-Control: no-store\r\n"
           "Connection: close\r\n"
           "\r\n";
}

std::uint64_t
serveSseSession(Socket &sock, ProgressBus &bus,
                const std::atomic<bool> &stopping)
{
    auto sub = bus.subscribe();
    std::uint64_t forwarded = 0;
    if (!sock.sendAll(sseResponseHead())) {
        bus.unsubscribe(sub);
        return forwarded;
    }
    // Tell the client it is live before the first real event.
    if (!sock.sendAll(": connected\n\n")) {
        bus.unsubscribe(sub);
        return forwarded;
    }

    constexpr auto kPollInterval = std::chrono::milliseconds(250);
    constexpr int kKeepaliveIdlePolls = 60; // ~15s of silence
    int idlePolls = 0;
    while (!stopping.load()) {
        BusEvent ev;
        if (sub->next(ev, kPollInterval)) {
            idlePolls = 0;
            if (!sock.sendAll(sseFrame(ev.name, ev.json)))
                break; // client went away
            ++forwarded;
            continue;
        }
        if (sub->closed())
            break; // bus shut down and the queue is drained
        if (++idlePolls >= kKeepaliveIdlePolls) {
            idlePolls = 0;
            if (!sock.sendAll(": keepalive\n\n"))
                break;
        }
    }
    bus.unsubscribe(sub);
    return forwarded;
}

} // namespace tdm::driver::service
