#include "driver/service/progress_bus.hh"

#include <algorithm>

namespace tdm::driver::service {

bool
ProgressBus::Subscription::next(BusEvent &out,
                                std::chrono::milliseconds timeout)
{
    std::unique_lock<std::mutex> lock(m_);
    cv_.wait_for(lock, timeout,
                 [&] { return !q_.empty() || closed_; });
    if (q_.empty())
        return false;
    out = std::move(q_.front());
    q_.pop_front();
    return true;
}

bool
ProgressBus::Subscription::closed() const
{
    std::lock_guard<std::mutex> lock(m_);
    return closed_;
}

std::uint64_t
ProgressBus::Subscription::dropped() const
{
    std::lock_guard<std::mutex> lock(m_);
    return dropped_;
}

std::size_t
ProgressBus::Subscription::queued() const
{
    std::lock_guard<std::mutex> lock(m_);
    return q_.size();
}

void
ProgressBus::Subscription::push(const BusEvent &ev)
{
    {
        std::lock_guard<std::mutex> lock(m_);
        if (closed_)
            return;
        if (q_.size() >= cap_) {
            // Bounded queue, freshest-wins: shed the oldest event.
            q_.pop_front();
            ++dropped_;
        }
        q_.push_back(ev);
    }
    cv_.notify_one();
}

void
ProgressBus::Subscription::close()
{
    {
        std::lock_guard<std::mutex> lock(m_);
        closed_ = true;
    }
    cv_.notify_all();
}

std::shared_ptr<ProgressBus::Subscription>
ProgressBus::subscribe(std::size_t cap)
{
    auto sub = std::make_shared<Subscription>(std::max<std::size_t>(
        cap, 1));
    std::lock_guard<std::mutex> lock(m_);
    if (closed_) {
        sub->close();
        return sub; // born closed: its consumer exits immediately
    }
    subs_.push_back(sub);
    return sub;
}

void
ProgressBus::unsubscribe(const std::shared_ptr<Subscription> &sub)
{
    if (!sub)
        return;
    {
        std::lock_guard<std::mutex> lock(m_);
        auto it = std::find(subs_.begin(), subs_.end(), sub);
        if (it != subs_.end()) {
            droppedRetired_ += sub->dropped();
            subs_.erase(it);
        }
    }
    sub->close();
}

void
ProgressBus::publish(const std::string &name, const std::string &json)
{
    // Snapshot the subscriber list so a slow push never holds the bus
    // lock (pushes only take the per-subscription lock anyway).
    std::vector<std::shared_ptr<Subscription>> subs;
    {
        std::lock_guard<std::mutex> lock(m_);
        if (closed_)
            return;
        ++published_;
        subs = subs_;
    }
    const BusEvent ev{name, json};
    for (const auto &sub : subs)
        sub->push(ev);
}

void
ProgressBus::close()
{
    std::vector<std::shared_ptr<Subscription>> subs;
    {
        std::lock_guard<std::mutex> lock(m_);
        closed_ = true;
        subs.swap(subs_);
    }
    for (const auto &sub : subs)
        sub->close();
}

std::uint64_t
ProgressBus::published() const
{
    std::lock_guard<std::mutex> lock(m_);
    return published_;
}

std::uint64_t
ProgressBus::dropped() const
{
    std::lock_guard<std::mutex> lock(m_);
    std::uint64_t total = droppedRetired_;
    for (const auto &sub : subs_)
        total += sub->dropped();
    return total;
}

std::size_t
ProgressBus::subscribers() const
{
    std::lock_guard<std::mutex> lock(m_);
    return subs_.size();
}

} // namespace tdm::driver::service
