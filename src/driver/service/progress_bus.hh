/**
 * @file
 * The progress bus: fan-out of live campaign events to any number of
 * subscribers, with bounded per-subscriber queues.
 *
 * The campaign server publishes one event per protocol milestone
 * (accepted / point / progress / done) and the dashboard's SSE
 * sessions each hold a subscription. Publishing never blocks and
 * never waits on a consumer: a subscriber that falls behind its queue
 * bound loses the *oldest* queued events (freshest data wins — this
 * is a live view, not a journal) and its drop counter records how
 * many. A fast subscriber therefore sees every event in publish
 * order; a stalled browser tab costs nothing but its own history.
 *
 * The bus is constructed only when the HTTP dashboard is enabled, so
 * a daemon without --http carries no bus, no subscribers, and no
 * per-event work at all.
 */

#ifndef TDM_DRIVER_SERVICE_PROGRESS_BUS_HH
#define TDM_DRIVER_SERVICE_PROGRESS_BUS_HH

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace tdm::driver::service {

/** One bus event: an SSE event name plus its JSON payload (one line,
 *  no trailing newline). */
struct BusEvent
{
    std::string name; ///< SSE event type ("point", "progress", ...)
    std::string json; ///< payload, rendered once by the publisher
};

/**
 * The bus. subscribe() hands out shared subscriptions; publish() fans
 * an event into every live queue. All methods are thread-safe.
 */
class ProgressBus
{
  public:
    /** Default per-subscriber queue bound (events, not bytes). */
    static constexpr std::size_t kDefaultQueueCap = 256;

    /**
     * One subscriber's bounded queue. Obtained from subscribe();
     * consumed from exactly one thread (the SSE session); dropped by
     * unsubscribe() or abandoned (the bus holds only a weak count —
     * an abandoned subscription stops receiving on the next publish).
     */
    class Subscription
    {
        friend class ProgressBus;

      public:
        explicit Subscription(std::size_t cap) : cap_(cap) {}

        /**
         * Pop the next event, waiting up to @p timeout. Returns false
         * on timeout with the queue still open, and — once the bus is
         * closed — false after the queue drains. Check closed() to
         * tell the two apart.
         */
        bool next(BusEvent &out, std::chrono::milliseconds timeout);

        /** The bus shut down (no further events will arrive). */
        bool closed() const;

        /** Events lost to the queue bound so far. */
        std::uint64_t dropped() const;

        /** Events currently queued. */
        std::size_t queued() const;

      private:
        void push(const BusEvent &ev); ///< called by the bus
        void close();                  ///< called by the bus

        mutable std::mutex m_;
        std::condition_variable cv_;
        std::deque<BusEvent> q_;
        std::size_t cap_;
        std::uint64_t dropped_ = 0;
        bool closed_ = false;
    };

    /** Register a subscriber with a queue bound of @p cap events. */
    std::shared_ptr<Subscription>
    subscribe(std::size_t cap = kDefaultQueueCap);

    /** Remove @p sub and close its queue (its consumer unblocks). */
    void unsubscribe(const std::shared_ptr<Subscription> &sub);

    /** Fan @p name / @p json out to every subscriber. Never blocks on
     *  consumers; over-bound queues drop their oldest event. */
    void publish(const std::string &name, const std::string &json);

    /** Close every subscription and reject future ones (shutdown). */
    void close();

    std::uint64_t published() const;
    /** Total events dropped across all subscribers, past and
     *  present (unsubscribed subscribers fold their count in). */
    std::uint64_t dropped() const;
    std::size_t subscribers() const;

  private:
    mutable std::mutex m_;
    std::vector<std::shared_ptr<Subscription>> subs_;
    std::uint64_t published_ = 0;
    std::uint64_t droppedRetired_ = 0; ///< from departed subscribers
    bool closed_ = false;
};

} // namespace tdm::driver::service

#endif // TDM_DRIVER_SERVICE_PROGRESS_BUS_HH
