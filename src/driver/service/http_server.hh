/**
 * @file
 * Dependency-free embedded HTTP/1.1 server for the campaign
 * dashboard.
 *
 * Deliberately small: the dashboard needs GET (and HEAD) on a handful
 * of routes plus one long-lived SSE stream, so this implements exactly
 * that — no bodies, no chunked transfer, no keep-alive (every response
 * carries "Connection: close"; browsers reconnect transparently and
 * the SSE stream holds its one connection open anyway). Like the
 * protocol socket it binds loopback or unix only, and it reuses the
 * same Listener/Socket layer.
 *
 * Request parsing is incremental (HttpParser::feed) so it can be
 * unit-tested against partial reads, oversized headers, and malformed
 * request lines without a socket in sight. Hostile input degrades to a
 * 4xx/5xx status, never to unbounded buffering: the whole request head
 * is capped at kMaxRequestBytes.
 */

#ifndef TDM_DRIVER_SERVICE_HTTP_SERVER_HH
#define TDM_DRIVER_SERVICE_HTTP_SERVER_HH

#include <atomic>
#include <cstddef>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "driver/service/socket.hh"

namespace tdm::driver::service {

/** One parsed request head (this server accepts no bodies). */
struct HttpRequest
{
    std::string method; ///< as sent (uppercase tokens expected)
    std::string target; ///< raw request target ("/api/x?y=1")
    std::string path;   ///< percent-decoded path ("/api/x")
    /** Decoded query parameters in order of appearance. */
    std::vector<std::pair<std::string, std::string>> query;
    /** Header fields, names lowercased, in order of appearance. */
    std::vector<std::pair<std::string, std::string>> headers;

    /** First header value for @p name (lowercase); nullptr if
     *  absent. */
    const std::string *header(const std::string &name) const;

    /** First query value for @p name, @p dflt when absent. */
    std::string queryParam(const std::string &name,
                           const std::string &dflt = "") const;
};

/**
 * Incremental request-head parser. Feed it bytes as they arrive;
 * Done/Error are terminal. On Error, status()/reason() describe the
 * HTTP error response to send (400 bad request, 431 oversized head,
 * 505 unsupported version).
 */
class HttpParser
{
  public:
    enum class State { NeedMore, Done, Error };

    /** Cap on the request head (request line + headers + CRLFCRLF). */
    static constexpr std::size_t kMaxRequestBytes = 16384;

    State feed(const char *data, std::size_t n);

    State state() const { return state_; }
    const HttpRequest &request() const { return req_; }
    int status() const { return status_; }
    const std::string &reason() const { return reason_; }

  private:
    State fail(int status, const std::string &reason);
    State tryParse();

    std::string buf_;
    HttpRequest req_;
    State state_ = State::NeedMore;
    int status_ = 400;
    std::string reason_;
};

/** Percent-decode @p in ('+' also decodes to space when @p plus_space).
 *  Returns false on a malformed %-escape. */
bool percentDecode(const std::string &in, std::string &out,
                   bool plus_space);

/** Standard reason phrase for @p status ("OK", "Not Found", ...). */
const char *httpStatusReason(int status);

/** Render a complete response head + body ("Connection: close",
 *  Content-Length set; body omitted when @p head_only). */
std::string renderHttpResponse(int status,
                               const std::string &content_type,
                               const std::string &body,
                               bool head_only = false);

/**
 * The server: an accept thread plus one thread per live connection
 * (the dashboard serves a handful of tabs, not the internet — this
 * mirrors the protocol server's model). The handler is invoked with
 * the parsed request and the connected socket and must write a
 * complete response; long-lived handlers (SSE) must poll @p stopping
 * to exit on shutdown. The connection closes when the handler
 * returns.
 */
class HttpServer
{
  public:
    using Handler = std::function<void(
        const HttpRequest &req, Socket &sock,
        const std::atomic<bool> &stopping)>;

    /** A client gets this long to deliver its complete request head;
     *  past it the connection is answered 408 and closed (an idle
     *  half-open connection must not pin a thread until shutdown). */
    static constexpr int kHeadReadTimeoutSec = 10;

    /** Bind @p addr and start the accept thread; throws
     *  std::runtime_error when the address cannot be bound.
     *  @p head_timeout_sec overrides the request-head deadline
     *  (tests use a short one; <= 0 falls back to the default). */
    HttpServer(const Address &addr, Handler handler,
               int head_timeout_sec = kHeadReadTimeoutSec);
    ~HttpServer();

    HttpServer(const HttpServer &) = delete;
    HttpServer &operator=(const HttpServer &) = delete;

    /** The bound address (ephemeral tcp ports resolved). */
    const Address &address() const { return listener_.address(); }

    /** Stop accepting, unblock every live connection, join all
     *  threads. Idempotent; callable from any thread. */
    void stop();

    /** Requests served (any status). */
    std::uint64_t requests() const { return requests_.load(); }

    /** Connection records not yet reaped (live plus finished threads
     *  awaiting their join at the next accept). A long-running daemon
     *  keeps this near its live-connection count; 0 after stop(). */
    std::size_t trackedConnections() const;

  private:
    /** One live (or finished-but-unjoined) connection. The handler
     *  thread clears @c fd before closing the socket (so stop() never
     *  shuts down a kernel-reused descriptor) and raises @c done as
     *  its final act; the accept loop joins done threads so a
     *  long-running daemon holds threads only for live connections. */
    struct Conn
    {
        int fd = -1; ///< -1 once the handler has closed the socket
        std::atomic<bool> done{false};
        std::thread thr;
    };

    void doStop();
    void reapFinished();
    void acceptLoop();
    void handleConnection(Socket sock, Conn &conn);

    Handler handler_;
    Listener listener_;
    const int headTimeoutSec_;
    std::atomic<bool> stopping_{false};
    std::atomic<std::uint64_t> requests_{0};

    mutable std::mutex connMutex_;
    std::list<std::unique_ptr<Conn>> conns_;
    std::once_flag stopOnce_;
    std::thread acceptThread_;         ///< last: joined first in stop()
};

} // namespace tdm::driver::service

#endif // TDM_DRIVER_SERVICE_HTTP_SERVER_HH
