/**
 * @file
 * Server-Sent-Events framing and the dashboard's /api/events session.
 *
 * SSE is the simplest live-push channel a browser speaks natively
 * (EventSource): a text/event-stream response that never ends, carrying
 * "event:"/"data:" framed messages separated by blank lines. Each
 * session holds one ProgressBus subscription; events already rendered
 * as JSON by the publisher are framed and forwarded verbatim, so a
 * metric value streams byte-identically to the file export. Idle
 * sessions get a comment-line keepalive so proxies and the client's
 * reconnect logic can tell "quiet" from "dead".
 */

#ifndef TDM_DRIVER_SERVICE_SSE_HH
#define TDM_DRIVER_SERVICE_SSE_HH

#include <atomic>
#include <string>

#include "driver/service/progress_bus.hh"
#include "driver/service/socket.hh"

namespace tdm::driver::service {

/**
 * Frame one SSE message: "event: <name>\n" then one "data:" line per
 * line of @p data (multi-line payloads must be split per the SSE
 * grammar or the browser would mis-frame them), then a blank line.
 * An empty @p name omits the event line ("message" default type).
 */
std::string sseFrame(const std::string &name, const std::string &data);

/** The response head for an SSE stream (no Content-Length — the
 *  stream ends when the connection does). */
std::string sseResponseHead();

/**
 * Run one SSE session over @p sock: write the stream head, then
 * forward every event from a fresh @p bus subscription until the
 * client disconnects, the bus closes, or @p stopping is set. Sends a
 * ": keepalive" comment after ~15s of silence. Returns the number of
 * events forwarded. Blocking; called from an HttpServer connection
 * thread.
 */
std::uint64_t serveSseSession(Socket &sock, ProgressBus &bus,
                              const std::atomic<bool> &stopping);

} // namespace tdm::driver::service

#endif // TDM_DRIVER_SERVICE_SSE_HH
