#include "driver/service/dashboard_api.hh"

#include <algorithm>
#include <cstdlib>
#include <sstream>

#include "driver/report/json_writer.hh"
#include "driver/service/sse.hh"
#include "www_assets.hh"

namespace tdm::driver::service {

using report::jsonEscape;
using report::jsonNumber;

// ---- registry ------------------------------------------------------------

CampaignRecord *
CampaignRegistry::findLocked(std::uint64_t id)
{
    // Ids ascend and lookups target recent campaigns; scan backwards.
    for (auto it = campaigns_.rbegin(); it != campaigns_.rend(); ++it)
        if (it->id == id)
            return &*it;
    return nullptr;
}

void
CampaignRegistry::accepted(std::uint64_t id, const std::string &name,
                           std::size_t total,
                           const std::string &metrics_pattern)
{
    std::lock_guard<std::mutex> lock(m_);
    CampaignRecord rec;
    rec.id = id;
    rec.name = name;
    rec.total = total;
    rec.metricsPattern = metrics_pattern;
    campaigns_.push_back(std::move(rec));

    // Bound the daemon's memory: evict the oldest *finished* campaign
    // once too many are retained (active ones are never evicted — the
    // done event still needs to land somewhere).
    std::size_t finished = 0;
    for (const CampaignRecord &c : campaigns_)
        if (!c.active)
            ++finished;
    if (finished > kMaxFinished) {
        for (auto it = campaigns_.begin(); it != campaigns_.end(); ++it)
            if (!it->active) {
                campaigns_.erase(it);
                break;
            }
    }
}

void
CampaignRegistry::point(std::uint64_t id,
                        const campaign::JobResult &job,
                        std::size_t index)
{
    std::lock_guard<std::mutex> lock(m_);
    CampaignRecord *rec = findLocked(id);
    if (!rec)
        return;
    PointRecord p;
    p.index = index;
    p.label = job.label;
    p.digest = job.digest;
    p.source = campaign::jobSourceName(job.source);
    p.ok = job.ok();
    p.error = job.error;
    p.completed = job.summary.completed;
    p.makespan = job.summary.makespan;
    p.timeMs = job.summary.timeMs;
    p.wallMs = job.wallMs;
    p.doneAtMs = job.doneAtMs;
    const sim::MetricSet selected =
        job.summary.metrics().select(rec->metricsPattern);
    p.metrics.assign(selected.entries().begin(),
                     selected.entries().end());
    if (!p.ok)
        ++rec->failures;
    switch (job.source) {
    case campaign::JobSource::Simulated: ++rec->simulated; break;
    case campaign::JobSource::Memory: ++rec->fromMemory; break;
    case campaign::JobSource::Disk: ++rec->fromDisk; break;
    case campaign::JobSource::Inflight: ++rec->fromInflight; break;
    case campaign::JobSource::Forked: ++rec->fromForked; break;
    }
    rec->points.push_back(std::move(p));
}

void
CampaignRegistry::done(std::uint64_t id,
                       const campaign::CampaignResult &result)
{
    std::lock_guard<std::mutex> lock(m_);
    CampaignRecord *rec = findLocked(id);
    if (!rec)
        return;
    rec->active = false;
    rec->wallMs = result.wallMs;
}

std::vector<CampaignRecord>
CampaignRegistry::snapshot() const
{
    std::lock_guard<std::mutex> lock(m_);
    return campaigns_;
}

bool
CampaignRegistry::get(std::uint64_t id, CampaignRecord &out) const
{
    std::lock_guard<std::mutex> lock(m_);
    for (auto it = campaigns_.rbegin(); it != campaigns_.rend(); ++it)
        if (it->id == id) {
            out = *it;
            return true;
        }
    return false;
}

std::size_t
CampaignRegistry::size() const
{
    std::lock_guard<std::mutex> lock(m_);
    return campaigns_.size();
}

// ---- dashboard -----------------------------------------------------------

Dashboard::Dashboard(const CampaignRegistry &registry, ProgressBus &bus,
                     const ResultStore *store,
                     std::function<StatusInfo()> status)
    : registry_(registry), bus_(bus), store_(store),
      status_(std::move(status))
{
}

std::string
Dashboard::statusJson() const
{
    // The status op's renderer, verbatim: one source of truth for the
    // counters whether they arrive over the protocol or over HTTP.
    std::ostringstream os;
    writeStatus(os, status_());
    std::string body = os.str();
    if (!body.empty() && body.back() == '\n')
        body.pop_back();
    body.push_back('\n');
    return body;
}

namespace {

void
campaignSummaryJson(std::ostream &os, const CampaignRecord &c)
{
    os << "{\"id\":" << c.id << ",\"name\":\"" << jsonEscape(c.name)
       << "\",\"total\":" << c.total << ",\"done\":" << c.points.size()
       << ",\"active\":" << (c.active ? "true" : "false")
       << ",\"failures\":" << c.failures << ",\"served\":{\"simulated\":"
       << c.simulated << ",\"memory\":" << c.fromMemory
       << ",\"disk\":" << c.fromDisk << ",\"inflight\":"
       << c.fromInflight << ",\"forked\":" << c.fromForked
       << "},\"wall_ms\":";
    jsonNumber(os, c.wallMs);
    os << ",\"metrics_pattern\":\"" << jsonEscape(c.metricsPattern)
       << "\"}";
}

void
pointRecordJson(std::ostream &os, const PointRecord &p)
{
    os << "{\"index\":" << p.index << ",\"label\":\""
       << jsonEscape(p.label) << "\",\"digest\":\""
       << jsonEscape(p.digest) << "\",\"source\":\"" << p.source
       << "\",\"ok\":" << (p.ok ? "true" : "false") << ",\"error\":\""
       << jsonEscape(p.error) << "\",\"completed\":"
       << (p.completed ? "true" : "false")
       << ",\"makespan\":" << p.makespan << ",\"time_ms\":";
    jsonNumber(os, p.timeMs);
    os << ",\"wall_ms\":";
    jsonNumber(os, p.wallMs);
    os << ",\"done_at_ms\":";
    jsonNumber(os, p.doneAtMs);
    os << ",\"metrics\":{";
    bool first = true;
    for (const auto &[k, v] : p.metrics) {
        os << (first ? "" : ",") << "\"" << jsonEscape(k) << "\":";
        jsonNumber(os, v);
        first = false;
    }
    os << "}}";
}

std::string
errorJson(const std::string &message)
{
    return "{\"error\":\"" + jsonEscape(message) + "\"}\n";
}

const www::Asset *
findAsset(const std::string &path)
{
    const std::string wanted = path == "/" ? "/index.html" : path;
    for (std::size_t i = 0; i < www::kAssetCount; ++i)
        if (wanted == www::kAssets[i].path)
            return &www::kAssets[i];
    return nullptr;
}

} // namespace

std::string
Dashboard::campaignsJson() const
{
    const std::vector<CampaignRecord> all = registry_.snapshot();
    std::ostringstream os;
    os << "{\"campaigns\":[";
    for (std::size_t i = 0; i < all.size(); ++i) {
        if (i)
            os << ",";
        campaignSummaryJson(os, all[i]);
    }
    os << "]}\n";
    return os.str();
}

bool
Dashboard::campaignPointsJson(std::uint64_t id, std::string &out) const
{
    CampaignRecord rec;
    if (!registry_.get(id, rec))
        return false;
    // Completion order is the live view; the export view is point
    // order — serve the latter so a row-by-row diff against the file
    // export lines up.
    std::sort(rec.points.begin(), rec.points.end(),
              [](const PointRecord &a, const PointRecord &b) {
                  return a.index < b.index;
              });
    std::ostringstream os;
    os << "{\"id\":" << rec.id << ",\"name\":\"" << jsonEscape(rec.name)
       << "\",\"total\":" << rec.total
       << ",\"active\":" << (rec.active ? "true" : "false")
       << ",\"metrics_pattern\":\"" << jsonEscape(rec.metricsPattern)
       << "\",\"points\":[";
    for (std::size_t i = 0; i < rec.points.size(); ++i) {
        if (i)
            os << ",";
        pointRecordJson(os, rec.points[i]);
    }
    os << "]}\n";
    out = os.str();
    return true;
}

std::string
Dashboard::storeJson(std::size_t limit) const
{
    std::ostringstream os;
    if (!store_) {
        os << "{\"store\":null,\"blobs\":[]}\n";
        return os.str();
    }
    const StoreStats stats = store_->stats();
    const auto blobs = store_->list();
    os << "{\"store\":{\"dir\":\"" << jsonEscape(store_->dir())
       << "\",\"blobs\":" << stats.blobs << ",\"bytes\":" << stats.bytes
       << ",\"hits\":" << stats.hits << ",\"misses\":" << stats.misses
       << ",\"stores\":" << stats.stores
       << ",\"corrupt\":" << stats.corrupt << "},\"blobs\":[";
    const std::size_t n = std::min(limit, blobs.size());
    for (std::size_t i = 0; i < n; ++i) {
        if (i)
            os << ",";
        os << "{\"digest\":\"" << blobs[i].first
           << "\",\"bytes\":" << blobs[i].second << "}";
    }
    os << "],\"truncated\":" << (n < blobs.size() ? "true" : "false")
       << "}\n";
    return os.str();
}

bool
Dashboard::storeBlobJson(const std::string &digest,
                         std::string &out) const
{
    if (!store_)
        return false;
    std::string key;
    RunSummary summary;
    if (!store_->loadByDigest(digest, key, summary))
        return false;
    std::ostringstream os;
    os << "{\"digest\":\"" << jsonEscape(digest) << "\",\"key\":\""
       << jsonEscape(key) << "\",\"completed\":"
       << (summary.completed ? "true" : "false")
       << ",\"makespan\":" << summary.makespan << ",\"time_ms\":";
    jsonNumber(os, summary.timeMs);
    os << ",\"energy_j\":";
    jsonNumber(os, summary.energyJ);
    os << ",\"edp\":";
    jsonNumber(os, summary.edp);
    os << ",\"num_tasks\":" << summary.numTasks << ",\"metrics\":{";
    bool first = true;
    for (const auto &[k, v] : summary.metrics().entries()) {
        os << (first ? "" : ",") << "\"" << jsonEscape(k) << "\":";
        jsonNumber(os, v);
        first = false;
    }
    os << "}}\n";
    out = os.str();
    return true;
}

void
Dashboard::handle(const HttpRequest &req, Socket &sock,
                  const std::atomic<bool> &stopping) const
{
    const bool head = req.method == "HEAD";
    const auto send = [&](int status, const std::string &type,
                          const std::string &body) {
        sock.sendAll(renderHttpResponse(status, type, body, head));
    };
    const char *kJson = "application/json";

    if (req.method != "GET" && !head) {
        send(405, kJson, errorJson("only GET and HEAD are supported"));
        return;
    }

    const std::string &path = req.path;

    if (path == "/api/status") {
        send(200, kJson, statusJson());
        return;
    }
    if (path == "/api/campaigns") {
        send(200, kJson, campaignsJson());
        return;
    }
    if (path.rfind("/api/campaign/", 0) == 0) {
        const std::string rest = path.substr(14);
        const std::size_t slash = rest.find('/');
        if (slash != std::string::npos &&
            rest.substr(slash) == "/points" && slash > 0) {
            const std::string idText = rest.substr(0, slash);
            char *end = nullptr;
            const unsigned long long id =
                std::strtoull(idText.c_str(), &end, 10);
            std::string body;
            if (end && *end == '\0' &&
                campaignPointsJson(id, body)) {
                send(200, kJson, body);
                return;
            }
            send(404, kJson, errorJson("unknown campaign id"));
            return;
        }
        send(404, kJson, errorJson("not found"));
        return;
    }
    if (path == "/api/events") {
        if (head) {
            sock.sendAll(sseResponseHead());
            return;
        }
        serveSseSession(sock, bus_, stopping);
        return;
    }
    if (path == "/api/store") {
        if (!store_) {
            send(404, kJson, errorJson("no result store configured"));
            return;
        }
        std::size_t limit = 1000;
        const std::string limitText = req.queryParam("limit");
        if (!limitText.empty()) {
            char *end = nullptr;
            const unsigned long long v =
                std::strtoull(limitText.c_str(), &end, 10);
            if (end && *end == '\0')
                limit = static_cast<std::size_t>(v);
        }
        send(200, kJson, storeJson(limit));
        return;
    }
    if (path.rfind("/api/store/", 0) == 0) {
        const std::string digest = path.substr(11);
        if (!store_) {
            send(404, kJson, errorJson("no result store configured"));
            return;
        }
        if (req.queryParam("raw") == "1") {
            std::string bytes;
            if (store_->readRawBlob(digest, bytes)) {
                send(200, "text/plain; charset=utf-8", bytes);
                return;
            }
        } else {
            std::string body;
            if (storeBlobJson(digest, body)) {
                send(200, kJson, body);
                return;
            }
        }
        send(404, kJson, errorJson("no such blob"));
        return;
    }
    if (const www::Asset *asset = findAsset(path)) {
        send(200, asset->contentType,
             std::string(asset->data, asset->size));
        return;
    }
    send(404, kJson, errorJson("not found"));
}

} // namespace tdm::driver::service
