#include "driver/service/http_server.hh"

#include <cctype>
#include <utility>

#include <sys/socket.h>

#include "driver/report/json_writer.hh"
#include "sim/logging.hh"

namespace tdm::driver::service {

namespace {

/** RFC 7230 token characters (method and header-name charset). */
bool
isTokenChar(char c)
{
    if (std::isalnum(static_cast<unsigned char>(c)))
        return true;
    switch (c) {
    case '!': case '#': case '$': case '%': case '&': case '\'':
    case '*': case '+': case '-': case '.': case '^': case '_':
    case '`': case '|': case '~':
        return true;
    default:
        return false;
    }
}

bool
isToken(const std::string &s)
{
    if (s.empty())
        return false;
    for (char c : s)
        if (!isTokenChar(c))
            return false;
    return true;
}

int
hexVal(char c)
{
    if (c >= '0' && c <= '9')
        return c - '0';
    if (c >= 'a' && c <= 'f')
        return c - 'a' + 10;
    if (c >= 'A' && c <= 'F')
        return c - 'A' + 10;
    return -1;
}

std::string
trimOws(const std::string &s)
{
    std::size_t b = 0, e = s.size();
    while (b < e && (s[b] == ' ' || s[b] == '\t'))
        ++b;
    while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t'))
        --e;
    return s.substr(b, e - b);
}

std::string
lower(std::string s)
{
    for (char &c : s)
        c = static_cast<char>(
            std::tolower(static_cast<unsigned char>(c)));
    return s;
}

} // namespace

const std::string *
HttpRequest::header(const std::string &name) const
{
    for (const auto &[k, v] : headers)
        if (k == name)
            return &v;
    return nullptr;
}

std::string
HttpRequest::queryParam(const std::string &name,
                        const std::string &dflt) const
{
    for (const auto &[k, v] : query)
        if (k == name)
            return v;
    return dflt;
}

bool
percentDecode(const std::string &in, std::string &out, bool plus_space)
{
    out.clear();
    out.reserve(in.size());
    for (std::size_t i = 0; i < in.size(); ++i) {
        const char c = in[i];
        if (c == '%') {
            if (i + 2 >= in.size())
                return false;
            const int hi = hexVal(in[i + 1]);
            const int lo = hexVal(in[i + 2]);
            if (hi < 0 || lo < 0)
                return false;
            const char decoded = static_cast<char>((hi << 4) | lo);
            if (decoded == '\0')
                return false; // no embedded NULs, ever
            out += decoded;
            i += 2;
        } else if (c == '+' && plus_space) {
            out += ' ';
        } else {
            out += c;
        }
    }
    return true;
}

HttpParser::State
HttpParser::fail(int status, const std::string &reason)
{
    state_ = State::Error;
    status_ = status;
    reason_ = reason;
    return state_;
}

HttpParser::State
HttpParser::feed(const char *data, std::size_t n)
{
    if (state_ != State::NeedMore)
        return state_; // Done/Error are terminal
    buf_.append(data, n);
    return tryParse();
}

HttpParser::State
HttpParser::tryParse()
{
    // The head ends at the first blank line. Accept bare-LF line
    // endings too (curl and browsers send CRLF; test harnesses often
    // don't bother).
    std::size_t headEnd = buf_.find("\r\n\r\n");
    std::size_t sepLen = 4;
    {
        const std::size_t lfEnd = buf_.find("\n\n");
        if (lfEnd != std::string::npos
            && (headEnd == std::string::npos || lfEnd < headEnd)) {
            headEnd = lfEnd;
            sepLen = 2;
        }
    }
    if (headEnd == std::string::npos) {
        if (buf_.size() > kMaxRequestBytes)
            return fail(431, "request head exceeds "
                             + std::to_string(kMaxRequestBytes)
                             + " bytes");
        return State::NeedMore;
    }
    if (headEnd + sepLen > kMaxRequestBytes)
        return fail(431, "request head exceeds "
                         + std::to_string(kMaxRequestBytes) + " bytes");

    const std::string head = buf_.substr(0, headEnd);

    // Split into lines (tolerating CRLF or LF).
    std::vector<std::string> lines;
    std::size_t pos = 0;
    while (pos <= head.size()) {
        std::size_t nl = head.find('\n', pos);
        if (nl == std::string::npos) {
            lines.push_back(head.substr(pos));
            break;
        }
        std::string line = head.substr(pos, nl - pos);
        if (!line.empty() && line.back() == '\r')
            line.pop_back();
        lines.push_back(std::move(line));
        pos = nl + 1;
    }
    if (lines.empty() || lines[0].empty())
        return fail(400, "empty request line");

    // Request line: METHOD SP target SP HTTP/x.y — exactly three
    // space-separated parts.
    const std::string &rl = lines[0];
    const std::size_t sp1 = rl.find(' ');
    const std::size_t sp2 =
        sp1 == std::string::npos ? std::string::npos
                                 : rl.find(' ', sp1 + 1);
    if (sp1 == std::string::npos || sp2 == std::string::npos
        || rl.find(' ', sp2 + 1) != std::string::npos)
        return fail(400, "malformed request line");
    req_.method = rl.substr(0, sp1);
    req_.target = rl.substr(sp1 + 1, sp2 - sp1 - 1);
    const std::string version = rl.substr(sp2 + 1);
    if (!isToken(req_.method))
        return fail(400, "malformed method token");
    if (version.rfind("HTTP/", 0) != 0)
        return fail(400, "malformed HTTP version");
    if (version != "HTTP/1.1" && version != "HTTP/1.0")
        return fail(505, "unsupported version " + version);
    if (req_.target.empty() || req_.target[0] != '/')
        return fail(400, "request target must be origin-form");

    // Decode path and query.
    const std::size_t q = req_.target.find('?');
    const std::string rawPath = req_.target.substr(0, q);
    if (!percentDecode(rawPath, req_.path, false))
        return fail(400, "malformed percent-encoding in path");
    if (q != std::string::npos) {
        const std::string rawQuery = req_.target.substr(q + 1);
        std::size_t i = 0;
        while (i <= rawQuery.size()) {
            std::size_t amp = rawQuery.find('&', i);
            if (amp == std::string::npos)
                amp = rawQuery.size();
            const std::string pair = rawQuery.substr(i, amp - i);
            if (!pair.empty()) {
                const std::size_t eq = pair.find('=');
                std::string k, v;
                const std::string rawK =
                    eq == std::string::npos ? pair : pair.substr(0, eq);
                const std::string rawV =
                    eq == std::string::npos ? "" : pair.substr(eq + 1);
                if (!percentDecode(rawK, k, true)
                    || !percentDecode(rawV, v, true))
                    return fail(400,
                                "malformed percent-encoding in query");
                req_.query.emplace_back(std::move(k), std::move(v));
            }
            i = amp + 1;
        }
    }

    // Header fields.
    for (std::size_t ln = 1; ln < lines.size(); ++ln) {
        const std::string &line = lines[ln];
        if (line.empty())
            continue;
        if (line[0] == ' ' || line[0] == '\t')
            return fail(400, "obsolete header folding");
        const std::size_t colon = line.find(':');
        if (colon == std::string::npos)
            return fail(400, "header field without ':'");
        std::string name = line.substr(0, colon);
        if (!isToken(name))
            return fail(400, "malformed header name");
        req_.headers.emplace_back(lower(std::move(name)),
                                  trimOws(line.substr(colon + 1)));
    }

    // This server accepts no request bodies: a request advertising one
    // is refused outright rather than half-read.
    if (const std::string *te = req_.header("transfer-encoding");
        te && !te->empty())
        return fail(400, "request bodies are not supported");
    if (const std::string *cl = req_.header("content-length");
        cl && *cl != "0")
        return fail(400, "request bodies are not supported");

    buf_.clear(); // any pipelined surplus is discarded (we close)
    state_ = State::Done;
    return state_;
}

const char *
httpStatusReason(int status)
{
    switch (status) {
    case 200: return "OK";
    case 204: return "No Content";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    case 505: return "HTTP Version Not Supported";
    default: return "Unknown";
    }
}

std::string
renderHttpResponse(int status, const std::string &content_type,
                   const std::string &body, bool head_only)
{
    std::string out;
    out.reserve(body.size() + 256);
    out += "HTTP/1.1 ";
    out += std::to_string(status);
    out += ' ';
    out += httpStatusReason(status);
    out += "\r\nServer: campaign_serve\r\nCache-Control: no-store"
           "\r\nContent-Type: ";
    out += content_type;
    out += "\r\nContent-Length: ";
    out += std::to_string(body.size());
    out += "\r\nConnection: close\r\n\r\n";
    if (!head_only)
        out += body;
    return out;
}

HttpServer::HttpServer(const Address &addr, Handler handler)
    : handler_(std::move(handler)), listener_(addr)
{
    acceptThread_ = std::thread([this] { acceptLoop(); });
}

HttpServer::~HttpServer() { stop(); }

void
HttpServer::stop()
{
    stopping_.store(true);
    listener_.shutdownNow();
    {
        std::lock_guard<std::mutex> lock(connMutex_);
        for (int fd : connFds_)
            ::shutdown(fd, SHUT_RDWR);
    }
    if (acceptThread_.joinable())
        acceptThread_.join();
    std::vector<std::thread> workers;
    {
        std::lock_guard<std::mutex> lock(connMutex_);
        workers.swap(threads_);
    }
    for (std::thread &t : workers)
        t.join();
}

void
HttpServer::acceptLoop()
{
    while (!stopping_.load()) {
        Socket sock = listener_.accept();
        if (!sock.valid())
            break;
        std::lock_guard<std::mutex> lock(connMutex_);
        if (stopping_.load())
            break;
        connFds_.push_back(sock.fd());
        threads_.emplace_back([this, s = std::move(sock)]() mutable {
            handleConnection(std::move(s));
        });
    }
}

void
HttpServer::handleConnection(Socket sock)
{
    const int fd = sock.fd();
    HttpParser parser;
    char chunk[4096];
    while (parser.state() == HttpParser::State::NeedMore
           && !stopping_.load()) {
        const long n = sock.readSome(chunk, sizeof chunk);
        if (n <= 0)
            break; // peer vanished before a full request head
        parser.feed(chunk, static_cast<std::size_t>(n));
    }

    if (parser.state() == HttpParser::State::Done) {
        requests_.fetch_add(1);
        try {
            handler_(parser.request(), sock, stopping_);
        } catch (const std::exception &e) {
            // A handler that threw has not written a response (the
            // dashboard renders into a buffer first).
            sock.sendAll(renderHttpResponse(
                500, "application/json",
                "{\"error\":\"" + report::jsonEscape(e.what())
                    + "\"}\n"));
        }
    } else if (parser.state() == HttpParser::State::Error) {
        sock.sendAll(renderHttpResponse(
            parser.status(), "application/json",
            "{\"error\":\"" + report::jsonEscape(parser.reason())
                + "\"}\n"));
    }

    sock.close();
    std::lock_guard<std::mutex> lock(connMutex_);
    for (std::size_t i = 0; i < connFds_.size(); ++i) {
        if (connFds_[i] == fd) {
            connFds_[i] = connFds_.back();
            connFds_.pop_back();
            break;
        }
    }
}

} // namespace tdm::driver::service
