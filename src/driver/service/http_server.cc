#include "driver/service/http_server.hh"

#include <cctype>
#include <cerrno>
#include <chrono>
#include <utility>

#include <sys/socket.h>
#include <sys/time.h>

#include "driver/report/json_writer.hh"
#include "sim/logging.hh"

namespace tdm::driver::service {

namespace {

/** RFC 7230 token characters (method and header-name charset). */
bool
isTokenChar(char c)
{
    if (std::isalnum(static_cast<unsigned char>(c)))
        return true;
    switch (c) {
    case '!': case '#': case '$': case '%': case '&': case '\'':
    case '*': case '+': case '-': case '.': case '^': case '_':
    case '`': case '|': case '~':
        return true;
    default:
        return false;
    }
}

bool
isToken(const std::string &s)
{
    if (s.empty())
        return false;
    for (char c : s)
        if (!isTokenChar(c))
            return false;
    return true;
}

int
hexVal(char c)
{
    if (c >= '0' && c <= '9')
        return c - '0';
    if (c >= 'a' && c <= 'f')
        return c - 'a' + 10;
    if (c >= 'A' && c <= 'F')
        return c - 'A' + 10;
    return -1;
}

std::string
trimOws(const std::string &s)
{
    std::size_t b = 0, e = s.size();
    while (b < e && (s[b] == ' ' || s[b] == '\t'))
        ++b;
    while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t'))
        --e;
    return s.substr(b, e - b);
}

std::string
lower(std::string s)
{
    for (char &c : s)
        c = static_cast<char>(
            std::tolower(static_cast<unsigned char>(c)));
    return s;
}

} // namespace

const std::string *
HttpRequest::header(const std::string &name) const
{
    for (const auto &[k, v] : headers)
        if (k == name)
            return &v;
    return nullptr;
}

std::string
HttpRequest::queryParam(const std::string &name,
                        const std::string &dflt) const
{
    for (const auto &[k, v] : query)
        if (k == name)
            return v;
    return dflt;
}

bool
percentDecode(const std::string &in, std::string &out, bool plus_space)
{
    out.clear();
    out.reserve(in.size());
    for (std::size_t i = 0; i < in.size(); ++i) {
        const char c = in[i];
        if (c == '%') {
            if (i + 2 >= in.size())
                return false;
            const int hi = hexVal(in[i + 1]);
            const int lo = hexVal(in[i + 2]);
            if (hi < 0 || lo < 0)
                return false;
            const char decoded = static_cast<char>((hi << 4) | lo);
            if (decoded == '\0')
                return false; // no embedded NULs, ever
            out += decoded;
            i += 2;
        } else if (c == '+' && plus_space) {
            out += ' ';
        } else {
            out += c;
        }
    }
    return true;
}

HttpParser::State
HttpParser::fail(int status, const std::string &reason)
{
    state_ = State::Error;
    status_ = status;
    reason_ = reason;
    return state_;
}

HttpParser::State
HttpParser::feed(const char *data, std::size_t n)
{
    if (state_ != State::NeedMore)
        return state_; // Done/Error are terminal
    buf_.append(data, n);
    return tryParse();
}

HttpParser::State
HttpParser::tryParse()
{
    // The head ends at the first blank line. Accept bare-LF line
    // endings too (curl and browsers send CRLF; test harnesses often
    // don't bother).
    std::size_t headEnd = buf_.find("\r\n\r\n");
    std::size_t sepLen = 4;
    {
        const std::size_t lfEnd = buf_.find("\n\n");
        if (lfEnd != std::string::npos
            && (headEnd == std::string::npos || lfEnd < headEnd)) {
            headEnd = lfEnd;
            sepLen = 2;
        }
    }
    if (headEnd == std::string::npos) {
        if (buf_.size() > kMaxRequestBytes)
            return fail(431, "request head exceeds "
                             + std::to_string(kMaxRequestBytes)
                             + " bytes");
        return State::NeedMore;
    }
    if (headEnd + sepLen > kMaxRequestBytes)
        return fail(431, "request head exceeds "
                         + std::to_string(kMaxRequestBytes) + " bytes");

    const std::string head = buf_.substr(0, headEnd);

    // Split into lines (tolerating CRLF or LF).
    std::vector<std::string> lines;
    std::size_t pos = 0;
    while (pos <= head.size()) {
        std::size_t nl = head.find('\n', pos);
        if (nl == std::string::npos) {
            lines.push_back(head.substr(pos));
            break;
        }
        std::string line = head.substr(pos, nl - pos);
        if (!line.empty() && line.back() == '\r')
            line.pop_back();
        lines.push_back(std::move(line));
        pos = nl + 1;
    }
    if (lines.empty() || lines[0].empty())
        return fail(400, "empty request line");

    // Request line: METHOD SP target SP HTTP/x.y — exactly three
    // space-separated parts.
    const std::string &rl = lines[0];
    const std::size_t sp1 = rl.find(' ');
    const std::size_t sp2 =
        sp1 == std::string::npos ? std::string::npos
                                 : rl.find(' ', sp1 + 1);
    if (sp1 == std::string::npos || sp2 == std::string::npos
        || rl.find(' ', sp2 + 1) != std::string::npos)
        return fail(400, "malformed request line");
    req_.method = rl.substr(0, sp1);
    req_.target = rl.substr(sp1 + 1, sp2 - sp1 - 1);
    const std::string version = rl.substr(sp2 + 1);
    if (!isToken(req_.method))
        return fail(400, "malformed method token");
    if (version.rfind("HTTP/", 0) != 0)
        return fail(400, "malformed HTTP version");
    if (version != "HTTP/1.1" && version != "HTTP/1.0")
        return fail(505, "unsupported version " + version);
    if (req_.target.empty() || req_.target[0] != '/')
        return fail(400, "request target must be origin-form");

    // Decode path and query.
    const std::size_t q = req_.target.find('?');
    const std::string rawPath = req_.target.substr(0, q);
    if (!percentDecode(rawPath, req_.path, false))
        return fail(400, "malformed percent-encoding in path");
    if (q != std::string::npos) {
        const std::string rawQuery = req_.target.substr(q + 1);
        std::size_t i = 0;
        while (i <= rawQuery.size()) {
            std::size_t amp = rawQuery.find('&', i);
            if (amp == std::string::npos)
                amp = rawQuery.size();
            const std::string pair = rawQuery.substr(i, amp - i);
            if (!pair.empty()) {
                const std::size_t eq = pair.find('=');
                std::string k, v;
                const std::string rawK =
                    eq == std::string::npos ? pair : pair.substr(0, eq);
                const std::string rawV =
                    eq == std::string::npos ? "" : pair.substr(eq + 1);
                if (!percentDecode(rawK, k, true)
                    || !percentDecode(rawV, v, true))
                    return fail(400,
                                "malformed percent-encoding in query");
                req_.query.emplace_back(std::move(k), std::move(v));
            }
            i = amp + 1;
        }
    }

    // Header fields.
    for (std::size_t ln = 1; ln < lines.size(); ++ln) {
        const std::string &line = lines[ln];
        if (line.empty())
            continue;
        if (line[0] == ' ' || line[0] == '\t')
            return fail(400, "obsolete header folding");
        const std::size_t colon = line.find(':');
        if (colon == std::string::npos)
            return fail(400, "header field without ':'");
        std::string name = line.substr(0, colon);
        if (!isToken(name))
            return fail(400, "malformed header name");
        req_.headers.emplace_back(lower(std::move(name)),
                                  trimOws(line.substr(colon + 1)));
    }

    // This server accepts no request bodies: a request advertising one
    // is refused outright rather than half-read.
    if (const std::string *te = req_.header("transfer-encoding");
        te && !te->empty())
        return fail(400, "request bodies are not supported");
    if (const std::string *cl = req_.header("content-length");
        cl && *cl != "0")
        return fail(400, "request bodies are not supported");

    buf_.clear(); // any pipelined surplus is discarded (we close)
    state_ = State::Done;
    return state_;
}

const char *
httpStatusReason(int status)
{
    switch (status) {
    case 200: return "OK";
    case 204: return "No Content";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    case 505: return "HTTP Version Not Supported";
    default: return "Unknown";
    }
}

std::string
renderHttpResponse(int status, const std::string &content_type,
                   const std::string &body, bool head_only)
{
    std::string out;
    out.reserve(body.size() + 256);
    out += "HTTP/1.1 ";
    out += std::to_string(status);
    out += ' ';
    out += httpStatusReason(status);
    out += "\r\nServer: campaign_serve\r\nCache-Control: no-store"
           "\r\nContent-Type: ";
    out += content_type;
    out += "\r\nContent-Length: ";
    out += std::to_string(body.size());
    out += "\r\nConnection: close\r\n\r\n";
    if (!head_only)
        out += body;
    return out;
}

HttpServer::HttpServer(const Address &addr, Handler handler,
                       int head_timeout_sec)
    : handler_(std::move(handler)), listener_(addr),
      headTimeoutSec_(head_timeout_sec > 0 ? head_timeout_sec
                                           : kHeadReadTimeoutSec)
{
    acceptThread_ = std::thread([this] { acceptLoop(); });
}

HttpServer::~HttpServer() { stop(); }

void
HttpServer::stop()
{
    // The shutdown protocol op and the signal watcher may both land
    // here concurrently; call_once runs the teardown exactly once and
    // blocks every other caller until the joins have finished.
    std::call_once(stopOnce_, [this] { doStop(); });
}

void
HttpServer::doStop()
{
    stopping_.store(true);
    listener_.shutdownNow();
    {
        std::lock_guard<std::mutex> lock(connMutex_);
        for (const auto &c : conns_)
            if (c->fd >= 0)
                ::shutdown(c->fd, SHUT_RDWR);
    }
    if (acceptThread_.joinable())
        acceptThread_.join();
    std::list<std::unique_ptr<Conn>> conns;
    {
        std::lock_guard<std::mutex> lock(connMutex_);
        conns.swap(conns_);
    }
    for (const auto &c : conns)
        if (c->thr.joinable())
            c->thr.join();
}

std::size_t
HttpServer::trackedConnections() const
{
    std::lock_guard<std::mutex> lock(connMutex_);
    return conns_.size();
}

void
HttpServer::reapFinished()
{
    std::list<std::unique_ptr<Conn>> finished;
    {
        std::lock_guard<std::mutex> lock(connMutex_);
        for (auto it = conns_.begin(); it != conns_.end();) {
            if ((*it)->done.load()) {
                finished.push_back(std::move(*it));
                it = conns_.erase(it);
            } else {
                ++it;
            }
        }
    }
    for (const auto &c : finished)
        if (c->thr.joinable())
            c->thr.join();
}

void
HttpServer::acceptLoop()
{
    while (!stopping_.load()) {
        Socket sock = listener_.accept();
        if (!sock.valid())
            break;
        // Join threads whose handler has returned, so thread count
        // tracks live connections instead of total requests served.
        reapFinished();
        std::lock_guard<std::mutex> lock(connMutex_);
        if (stopping_.load())
            break;
        conns_.push_back(std::make_unique<Conn>());
        Conn &conn = *conns_.back();
        conn.fd = sock.fd();
        conn.thr =
            std::thread([this, &conn, s = std::move(sock)]() mutable {
                handleConnection(std::move(s), conn);
            });
    }
}

void
HttpServer::handleConnection(Socket sock, Conn &conn)
{
    // Bound how long an idle or trickling client may hold this thread
    // before its request head is complete: each recv gets a receive
    // timeout, and the head as a whole gets one deadline.
    {
        struct timeval tv{};
        tv.tv_sec = headTimeoutSec_;
        ::setsockopt(sock.fd(), SOL_SOCKET, SO_RCVTIMEO, &tv,
                     sizeof tv);
    }
    const auto deadline =
        std::chrono::steady_clock::now()
        + std::chrono::seconds(headTimeoutSec_);

    HttpParser parser;
    char chunk[4096];
    bool timedOut = false;
    while (parser.state() == HttpParser::State::NeedMore
           && !stopping_.load()) {
        const long n = sock.readSome(chunk, sizeof chunk);
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
            timedOut = true;
            break;
        }
        if (n <= 0)
            break; // peer vanished before a full request head
        parser.feed(chunk, static_cast<std::size_t>(n));
        if (parser.state() == HttpParser::State::NeedMore
            && std::chrono::steady_clock::now() >= deadline) {
            timedOut = true;
            break;
        }
    }

    if (parser.state() == HttpParser::State::Done) {
        // Handlers may be long-lived (SSE); the head-read timeout
        // must not bleed into them.
        struct timeval tv{};
        ::setsockopt(sock.fd(), SOL_SOCKET, SO_RCVTIMEO, &tv,
                     sizeof tv);
        requests_.fetch_add(1);
        try {
            handler_(parser.request(), sock, stopping_);
        } catch (const std::exception &e) {
            // A handler that threw has not written a response (the
            // dashboard renders into a buffer first).
            sock.sendAll(renderHttpResponse(
                500, "application/json",
                "{\"error\":\"" + report::jsonEscape(e.what())
                    + "\"}\n"));
        }
    } else if (timedOut) {
        sock.sendAll(renderHttpResponse(
            408, "application/json",
            "{\"error\":\"request head not received within "
                + std::to_string(headTimeoutSec_) + "s\"}\n"));
    } else if (parser.state() == HttpParser::State::Error) {
        sock.sendAll(renderHttpResponse(
            parser.status(), "application/json",
            "{\"error\":\"" + report::jsonEscape(parser.reason())
                + "\"}\n"));
    }

    // Drop the fd from stop()'s shutdown set *before* closing: once
    // closed, the number can be reused by an unrelated descriptor.
    {
        std::lock_guard<std::mutex> lock(connMutex_);
        conn.fd = -1;
    }
    sock.close();
    conn.done.store(true); // last: the reaper may join immediately
}

} // namespace tdm::driver::service
