/**
 * @file
 * The dashboard: campaign registry + HTTP route handlers.
 *
 * The CampaignRegistry is the server-side memory behind the JSON API:
 * every submit the protocol server accepts is recorded here (points in
 * completion order, per-source counters, outcome), so a browser that
 * arrives mid-sweep — or after it — can render the whole picture, not
 * just the events it happened to catch on the SSE stream. Metric
 * values are captured pre-rendered through the shared metric
 * selection, so /api/campaign/<id>/points serves them byte-identical
 * to the campaign_run file export.
 *
 * The Dashboard maps HTTP requests onto that registry, the progress
 * bus (SSE), the result store (browser), and the embedded front end:
 *
 *     /                       the dashboard page (embedded www/)
 *     /api/status             server counters (the status op's JSON)
 *     /api/campaigns          every known campaign, summarized
 *     /api/campaign/<id>/points   full per-point results + metrics
 *     /api/events             live SSE stream (accepted/point/
 *                             progress/done)
 *     /api/store              store stats + digest listing
 *     /api/store/<digest>     one decoded blob (?raw=1: exact bytes)
 *
 * Everything is read-only: the dashboard cannot submit, mutate, or
 * shut down anything, which is what makes serving it next to the
 * control protocol safe.
 */

#ifndef TDM_DRIVER_SERVICE_DASHBOARD_API_HH
#define TDM_DRIVER_SERVICE_DASHBOARD_API_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "driver/campaign/engine.hh"
#include "driver/service/http_server.hh"
#include "driver/service/progress_bus.hh"
#include "driver/service/protocol.hh"
#include "driver/service/socket.hh"
#include "driver/service/store.hh"

namespace tdm::driver::service {

/** One resolved point, as the dashboard remembers it. */
struct PointRecord
{
    std::size_t index = 0; ///< position in the campaign's point list
    std::string label;
    std::string digest;
    std::string source; ///< "simulated" / "memory" / "disk" /
                        ///< "inflight" / "forked"
    bool ok = false;
    std::string error;
    bool completed = false;
    std::uint64_t makespan = 0;
    double timeMs = 0.0;
    double wallMs = 0.0;
    double doneAtMs = 0.0; ///< ms since the campaign started
    /** Selected metrics in export (name) order, values exactly as the
     *  file writers would emit them. */
    std::vector<std::pair<std::string, double>> metrics;
};

/** One campaign, as the dashboard remembers it. */
struct CampaignRecord
{
    std::uint64_t id = 0; ///< the protocol's accepted/point/done id
    std::string name;
    std::size_t total = 0; ///< points accepted
    std::string metricsPattern;
    bool active = true; ///< still streaming (no done event yet)
    std::uint64_t simulated = 0;
    std::uint64_t fromMemory = 0;
    std::uint64_t fromDisk = 0;
    std::uint64_t fromInflight = 0;
    std::uint64_t fromForked = 0;
    std::size_t failures = 0;
    double wallMs = 0.0;             ///< set by the done event
    std::vector<PointRecord> points; ///< in completion order
};

/**
 * Thread-safe registry of every campaign the server has streamed.
 * Appended to by protocol-connection threads, snapshotted by dashboard
 * threads. Finished campaigns beyond kMaxFinished are evicted oldest
 * first so a long-lived daemon's memory stays bounded; active
 * campaigns are never evicted.
 */
class CampaignRegistry
{
  public:
    /** Finished campaigns retained for browsing. */
    static constexpr std::size_t kMaxFinished = 128;

    void accepted(std::uint64_t id, const std::string &name,
                  std::size_t total,
                  const std::string &metrics_pattern);
    void point(std::uint64_t id, const campaign::JobResult &job,
               std::size_t index);
    void done(std::uint64_t id,
              const campaign::CampaignResult &result);

    /** Copy of every record, id-ascending. */
    std::vector<CampaignRecord> snapshot() const;

    /** Copy of one record; false when the id is unknown. */
    bool get(std::uint64_t id, CampaignRecord &out) const;

    std::size_t size() const;

  private:
    CampaignRecord *findLocked(std::uint64_t id);

    mutable std::mutex m_;
    std::vector<CampaignRecord> campaigns_; ///< id-ascending
};

/**
 * The HTTP route table. Stateless apart from its references: the
 * registry and bus are owned by the CampaignServer, the store is the
 * server's (may be null), and @p status is a callback into the server
 * so /api/status and the protocol's status op render the exact same
 * counters.
 */
class Dashboard
{
  public:
    Dashboard(const CampaignRegistry &registry, ProgressBus &bus,
              const ResultStore *store,
              std::function<StatusInfo()> status);

    /** HttpServer::Handler entry point. */
    void handle(const HttpRequest &req, Socket &sock,
                const std::atomic<bool> &stopping) const;

  private:
    std::string statusJson() const;
    std::string campaignsJson() const;
    /** nullopt-style: false when the id is unknown. */
    bool campaignPointsJson(std::uint64_t id, std::string &out) const;
    std::string storeJson(std::size_t limit) const;
    /** 200 body for /api/store/<digest>; false when absent/corrupt. */
    bool storeBlobJson(const std::string &digest,
                       std::string &out) const;

    const CampaignRegistry &registry_;
    ProgressBus &bus_;
    const ResultStore *store_; ///< may be null (no --store)
    std::function<StatusInfo()> status_;
};

} // namespace tdm::driver::service

#endif // TDM_DRIVER_SERVICE_DASHBOARD_API_HH
