/**
 * @file
 * Persistent content-addressed result store: the disk half of the
 * campaign service.
 *
 * Each stored entry maps a canonical-spec fingerprint (the campaign
 * cache key — see driver/campaign/fingerprint.hh) to a RunSummary
 * blob, named by the key's 64-bit FNV-1a digest:
 *
 *     <dir>/v<schema>/<16-hex-digest>.result
 *
 * Layout and invariants:
 *  - The schema version (ResultCache::kSchemaVersion) is baked into
 *    the directory name AND every blob header, so summaries written
 *    under an older schema can never be served — bumping the version
 *    silently invalidates the whole store.
 *  - Writes are atomic: a unique temp file in the same directory is
 *    renamed into place, so readers (including concurrent processes)
 *    only ever observe absent or complete blobs, and a crash mid-write
 *    leaves at worst an ignored temp file.
 *  - Loads are corruption-tolerant: a truncated, garbled, or
 *    checksum-mismatched blob — or a digest collision with a different
 *    key — degrades to a cache miss, never an error. The engine then
 *    re-simulates and re-publishes.
 *  - The in-memory index is rebuilt by a directory scan on startup, so
 *    a store survives restarts and can be shared across processes
 *    (last writer wins; entries are pure functions of their key, so
 *    concurrent writers write identical bytes).
 *
 * Doubles are serialized with 17 significant digits and parse back
 * bit-exactly, so a summary served from disk re-exports byte-identical
 * metric JSON — the service's restart invariant.
 */

#ifndef TDM_DRIVER_SERVICE_STORE_HH
#define TDM_DRIVER_SERVICE_STORE_HH

#include <cstdint>
#include <iosfwd>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "driver/campaign/result_cache.hh"

namespace tdm::driver::service {

/** One consistent snapshot of the store's counters (the status op and
 *  the dashboard read them together; per-getter locking would let the
 *  fields shear against each other). */
struct StoreStats
{
    std::size_t blobs = 0;      ///< indexed result blobs
    std::uint64_t bytes = 0;    ///< their summed on-disk size
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t stores = 0;
    std::uint64_t corrupt = 0;
};

/**
 * Serialize @p summary under @p key as one store blob (header, fields,
 * metric lines, checksum, end marker). Exposed for tests.
 */
void writeSummaryBlob(std::ostream &os, const std::string &key,
                      const RunSummary &summary,
                      unsigned schema_version);

/**
 * Parse one store blob. Returns false (leaving outputs unspecified) on
 * any structural damage: bad header, wrong schema, unknown or missing
 * field, checksum mismatch, or missing end marker. Exposed for tests.
 */
bool readSummaryBlob(std::istream &is, std::string &key_out,
                     RunSummary &summary_out, unsigned schema_version);

/**
 * The persistent store. Thread-safe; implements the engine's
 * CacheBackend so it can sit directly behind the in-memory ResultCache
 * (campaign_run --store, campaign_serve).
 */
class ResultStore : public campaign::CacheBackend
{
  public:
    /**
     * Open (creating if needed) the store under @p dir and rebuild the
     * index by scanning it. @p schema_version defaults to the live
     * summary schema; tests override it to prove invalidation.
     * Throws std::runtime_error when the directory cannot be created.
     */
    explicit ResultStore(
        const std::string &dir,
        unsigned schema_version = campaign::ResultCache::kSchemaVersion);

    std::optional<RunSummary> fetch(const std::string &key) override;
    void publish(const std::string &key,
                 const RunSummary &summary) override;
    const char *backendName() const override { return "disk-store"; }

    /** Root directory (as given). */
    const std::string &dir() const { return dir_; }

    /** Versioned directory blobs live in: <dir>/v<schema>. */
    const std::string &versionDir() const { return versionDir_; }

    /** Blob path for @p key (whether or not it exists). */
    std::string pathForKey(const std::string &key) const;

    /** Blob path for a 16-hex @p digest (whether or not it exists). */
    std::string pathForDigest(const std::string &digest) const;

    /** Indexed blobs. */
    std::size_t size() const;

    std::uint64_t hits() const;
    std::uint64_t misses() const;
    std::uint64_t stores() const;
    /** Blobs that failed to parse and were served as misses. */
    std::uint64_t corrupt() const;

    /** All counters in one locked read — O(1), safe to poll. */
    StoreStats stats() const;

    /** Indexed (digest, byte-size) pairs, digest-sorted. */
    std::vector<std::pair<std::string, std::uint64_t>> list() const;

    /**
     * Load the blob named by @p digest (the store browser's lookup:
     * address by digest, no key in hand). False when absent, corrupt,
     * or schema-mismatched; unlike fetch(), a failed load here touches
     * no counters and evicts nothing — browsing is read-only.
     */
    bool loadByDigest(const std::string &digest, std::string &key_out,
                      RunSummary &summary_out) const;

    /** Raw bytes of @p digest's blob (the store browser's ?raw=1
     *  view). False when absent or unreadable. */
    bool readRawBlob(const std::string &digest,
                     std::string &bytes_out) const;

  private:
    void scanIndex();

    std::string dir_;
    std::string versionDir_;
    unsigned schemaVersion_;

    mutable std::mutex mutex_;
    /** digest -> blob byte size for everything present on disk
     *  (ordered so listings are deterministic). */
    std::map<std::string, std::uint64_t> index_;
    std::uint64_t bytes_ = 0; ///< summed sizes of index_ entries
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t stores_ = 0;
    std::uint64_t corrupt_ = 0;
    std::uint64_t tmpSeq_ = 0; ///< unique temp-file suffix
};

} // namespace tdm::driver::service

#endif // TDM_DRIVER_SERVICE_STORE_HH
