/**
 * @file
 * The campaign service wire protocol: line-delimited JSON.
 *
 * Every request and every response is one JSON object on one line
 * (terminated by '\n'); a connection carries any number of requests in
 * sequence. Requests:
 *
 *     {"op":"ping"}
 *     {"op":"status"}
 *     {"op":"shutdown"}
 *     {"op":"submit", "name":"sweep", "metrics":"dmu.*",
 *      "set":{"runtime":"tdm"},
 *      "campaign":"axis machine.cores = 16, 32\n"}
 *     {"op":"submit", "name":"sweep",
 *      "points":[{"label":"a","spec":{"machine.cores":"16"}}, ...]}
 *
 * A submit carries either a *.campaign file body ("campaign", parsed
 * by the same parser the CLI uses) or an explicit point list; "set"
 * entries are fixed spec overrides applied to every point, "metrics"
 * selects the exported metric subtree (same globs as --metrics).
 *
 * Submit responses stream as the engine resolves points:
 *
 *     {"event":"accepted","id":1,"name":"sweep","points":4}
 *     {"event":"point","id":1,"index":0,"total":4,"label":...,
 *      "digest":...,"source":"simulated|memory|disk|inflight|forked",
 *      "cache_hit":...,"ok":...,"error":...,"wall_ms":...,
 *      <summary fields>, "metrics":{...}}        (one per point)
 *     {"event":"done","id":1,"points":4,"simulated":...,
 *      "cache_hits":...,"from_memory":...,"from_disk":...,
 *      "from_inflight":...,"from_forked":...,"warmups_shared":...,
 *      "failures":...,...}
 *
 * plus {"event":"pong"}, {"event":"status",...}, {"event":"bye"} and
 * {"event":"error","message":...} for the other ops. Numbers use the
 * report writer's 17-significant-digit formatting, so a metric value
 * serializes to identical bytes over the wire and in the file export —
 * this is what makes the restart replay byte-identical.
 *
 * This header also hosts the minimal JSON reader the server and the
 * C++ client share (the repo otherwise only writes JSON).
 */

#ifndef TDM_DRIVER_SERVICE_PROTOCOL_HH
#define TDM_DRIVER_SERVICE_PROTOCOL_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "driver/campaign/engine.hh"

namespace tdm::driver::service {

// ---- JSON reader ---------------------------------------------------------

/** One parsed JSON value (a small tree, not a streaming reader). */
struct JsonValue
{
    enum class Kind { Null, Bool, Number, String, Array, Object };

    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0.0;
    /** String payload (decoded); for numbers, the raw literal text. */
    std::string text;
    std::vector<JsonValue> items; ///< array elements
    /** Object members in input order (duplicates kept; find() returns
     *  the first). */
    std::vector<std::pair<std::string, JsonValue>> members;

    bool isNull() const { return kind == Kind::Null; }
    bool isObject() const { return kind == Kind::Object; }
    bool isArray() const { return kind == Kind::Array; }
    bool isString() const { return kind == Kind::String; }
    bool isNumber() const { return kind == Kind::Number; }

    /** Member lookup; nullptr when absent or not an object. */
    const JsonValue *find(const std::string &key) const;

    /** String payload, or @p dflt when not a string. */
    std::string asString(const std::string &dflt = "") const;
    /** Numeric payload, or @p dflt when not a number. */
    double asNumber(double dflt = 0.0) const;
    /** Boolean payload, or @p dflt when not a bool. */
    bool asBool(bool dflt = false) const;
};

/**
 * Parse exactly one JSON document from @p text (surrounding whitespace
 * allowed, trailing garbage rejected). On failure returns false and
 * describes the problem in @p error. Handles the full scalar grammar
 * including \uXXXX escapes (with surrogate pairs); depth is capped so
 * hostile input cannot blow the stack.
 */
bool parseJson(const std::string &text, JsonValue &out,
               std::string &error);

// ---- requests ------------------------------------------------------------

enum class RequestOp { Ping, Status, Shutdown, Submit };

/** A parsed submit request (see the file header for the shape). */
struct SubmitRequest
{
    std::string name;         ///< campaign name ("submitted" default)
    std::string campaignText; ///< *.campaign body; or:
    struct Point
    {
        std::string label; ///< optional; "p<index>" when empty
        std::vector<std::pair<std::string, std::string>> spec;
    };
    std::vector<Point> points;
    /** Fixed overrides applied to every point (after its own spec). */
    std::vector<std::pair<std::string, std::string>> set;
    std::string metrics; ///< metric-selection globs ("" = everything)
};

struct Request
{
    RequestOp op = RequestOp::Ping;
    SubmitRequest submit; ///< meaningful when op == Submit
};

/**
 * Parse one request line. Returns false (with a message suitable for
 * an error event) on malformed JSON, an unknown op, or a structurally
 * invalid submit. Spec *values* are not validated here — that happens
 * in buildCampaign, where spec::SpecError carries the context.
 */
bool parseRequest(const std::string &line, Request &out,
                  std::string &error);

/**
 * Expand @p req into a runnable campaign: parse the campaign body (or
 * assemble the point list), apply the "set" overrides, and bind the
 * metric selection. Throws spec::SpecError on unknown keys, bad
 * values, or a malformed campaign body.
 */
campaign::Campaign buildCampaign(const SubmitRequest &req);

// ---- responses -----------------------------------------------------------

void writePong(std::ostream &os);
void writeBye(std::ostream &os);
void writeError(std::ostream &os, const std::string &message);
void writeAccepted(std::ostream &os, std::uint64_t id,
                   const std::string &name, std::size_t points);

/** One streamed per-point result; @p metrics_pattern selects the
 *  exported metric subtree exactly like the file writers. */
void writePoint(std::ostream &os, std::uint64_t id,
                const campaign::JobResult &job, std::size_t index,
                std::size_t total, const std::string &metrics_pattern);

void writeDone(std::ostream &os, std::uint64_t id,
               const campaign::CampaignResult &result);

/** Server counters for the status op. */
struct StatusInfo
{
    std::uint64_t campaigns = 0; ///< submits served
    std::uint64_t points = 0;    ///< points streamed
    std::uint64_t simulated = 0;
    std::uint64_t fromMemory = 0;
    std::uint64_t fromDisk = 0;
    std::uint64_t fromInflight = 0;
    std::uint64_t fromForked = 0; ///< points forked from a warm-start
                                  ///< snapshot instead of run cold
    std::size_t cachePoints = 0; ///< in-memory cache entries
    std::size_t inflight = 0;    ///< points simulating right now
    unsigned threads = 0;
    double uptimeMs = 0.0; ///< since the server was constructed
    bool hasStore = false;
    std::string storeDir;
    std::size_t storeBlobs = 0;
    std::uint64_t storeBytes = 0; ///< summed blob sizes on disk
    std::uint64_t storeHits = 0;
    std::uint64_t storeMisses = 0;
    std::uint64_t storeStores = 0;
    std::uint64_t storeCorrupt = 0;
    bool hasHttp = false; ///< dashboard enabled (--http)
    std::string httpAddr;
    std::uint64_t httpRequests = 0;
    std::size_t sseSubscribers = 0;  ///< live /api/events sessions
    std::uint64_t busPublished = 0;  ///< events fanned to the bus
    std::uint64_t busDropped = 0;    ///< events shed by slow streams
};

void writeStatus(std::ostream &os, const StatusInfo &info);

// ---- client-side event decoding ------------------------------------------

/**
 * Decode a "point" event back into a JobResult (the inverse of
 * writePoint, minus the fields a point event does not carry: the spec
 * map and the machine phase breakdowns). Metrics land in
 * job.summary.machine.metrics. Returns false on a malformed event.
 */
bool decodePointEvent(const JsonValue &event, campaign::JobResult &job,
                      std::size_t &index, std::size_t &total);

} // namespace tdm::driver::service

#endif // TDM_DRIVER_SERVICE_PROTOCOL_HH
