#include "driver/service/server.hh"

#include <sstream>
#include <utility>

#include <sys/socket.h>

#include "driver/spec/spec.hh"
#include "sim/logging.hh"

namespace tdm::driver::service {

CampaignServer::CampaignServer(const Address &addr, ServerOptions opts)
    : opts_(std::move(opts)),
      store_(opts_.storeDir.empty()
                 ? nullptr
                 : std::make_unique<ResultStore>(opts_.storeDir)),
      engine_([&] {
          campaign::EngineOptions eo = opts_.engine;
          eo.backend = store_.get();
          return std::make_unique<campaign::CampaignEngine>(eo);
      }()),
      listener_(addr)
{
    if (opts_.verbose) {
        sim::inform("campaign_serve: listening on ",
                    listener_.address().display(),
                    store_ ? " (store: " + store_->versionDir() + ")"
                           : " (no persistent store)");
    }
}

CampaignServer::~CampaignServer()
{
    stop();
    // serve() joins its threads before returning; if serve() was never
    // entered there are none. A destructor racing an active serve() is
    // a caller bug, but join anything left to fail loudly, not UB.
    for (std::thread &t : threads_)
        if (t.joinable())
            t.join();
}

void
CampaignServer::serve()
{
    while (!stopping_.load()) {
        Socket sock = listener_.accept();
        if (!sock.valid()) {
            if (stopping_.load())
                break;
            // Listener failure (not a stop): nothing to accept on.
            sim::warn("campaign_serve: accept failed, stopping");
            break;
        }
        {
            std::lock_guard<std::mutex> lock(clientsMutex_);
            if (stopping_.load())
                break;
            clientFds_.push_back(sock.fd());
            threads_.emplace_back(
                [this, s = std::move(sock)]() mutable {
                    handleClient(std::move(s));
                });
        }
    }
    std::vector<std::thread> workers;
    {
        std::lock_guard<std::mutex> lock(clientsMutex_);
        workers.swap(threads_);
    }
    for (std::thread &t : workers)
        t.join();
}

void
CampaignServer::stop()
{
    stopping_.store(true);
    listener_.shutdownNow();
    std::lock_guard<std::mutex> lock(clientsMutex_);
    for (int fd : clientFds_)
        ::shutdown(fd, SHUT_RDWR);
}

void
CampaignServer::handleClient(Socket sock)
{
    const int fd = sock.fd();
    if (opts_.verbose)
        sim::inform("campaign_serve: client connected");
    std::string line;
    while (!stopping_.load() && sock.readLine(line)) {
        if (line.empty())
            continue;
        Request req;
        std::string error;
        if (!parseRequest(line, req, error)) {
            std::ostringstream out;
            writeError(out, error);
            if (!sock.sendAll(out.str()))
                break;
            continue;
        }
        if (req.op == RequestOp::Ping) {
            std::ostringstream out;
            writePong(out);
            if (!sock.sendAll(out.str()))
                break;
        } else if (req.op == RequestOp::Status) {
            std::ostringstream out;
            writeStatus(out, status());
            if (!sock.sendAll(out.str()))
                break;
        } else if (req.op == RequestOp::Shutdown) {
            std::ostringstream out;
            writeBye(out);
            sock.sendAll(out.str());
            if (opts_.verbose)
                sim::inform(
                    "campaign_serve: shutdown requested by client");
            stop();
            break;
        } else {
            handleSubmit(sock, req.submit);
        }
    }
    sock.close();
    std::lock_guard<std::mutex> lock(clientsMutex_);
    for (std::size_t i = 0; i < clientFds_.size(); ++i) {
        if (clientFds_[i] == fd) {
            clientFds_[i] = clientFds_.back();
            clientFds_.pop_back();
            break;
        }
    }
}

void
CampaignServer::handleSubmit(Socket &sock, const SubmitRequest &req)
{
    campaign::Campaign c;
    try {
        c = buildCampaign(req);
    } catch (const std::exception &e) {
        std::ostringstream out;
        writeError(out, e.what());
        sock.sendAll(out.str());
        return;
    }
    const std::uint64_t id = nextId_.fetch_add(1);
    if (opts_.verbose)
        sim::inform("campaign_serve: submit #", id, " '", c.name, "' (",
                    c.points.size(), " points)");
    {
        std::ostringstream out;
        writeAccepted(out, id, c.name, c.points.size());
        if (!sock.sendAll(out.str()))
            return;
    }

    // Stream each point as the engine resolves it. A send failure
    // cannot abort the run (the engine owns the jobs; other clients
    // may be attached to them) — we just stop streaming.
    bool sendOk = true;
    const std::string metricsPattern = c.metrics;
    const campaign::CampaignResult result = engine_->run(
        c, [&](const campaign::JobResult &job, std::size_t index,
               std::size_t total) {
            if (!sendOk)
                return;
            std::ostringstream out;
            writePoint(out, id, job, index, total, metricsPattern);
            sendOk = sock.sendAll(out.str());
        });

    {
        std::lock_guard<std::mutex> lock(statsMutex_);
        ++campaigns_;
        points_ += result.jobs.size();
        simulated_ += result.simulated;
        fromMemory_ += result.fromMemory;
        fromDisk_ += result.fromDisk;
        fromInflight_ += result.fromInflight;
    }
    if (opts_.verbose)
        sim::inform("campaign_serve: submit #", id, " done: ",
                    result.simulated, " simulated, ",
                    result.fromMemory, " memory, ", result.fromDisk,
                    " disk, ", result.fromInflight, " inflight");
    if (sendOk) {
        std::ostringstream out;
        writeDone(out, id, result);
        sock.sendAll(out.str());
    }
}

StatusInfo
CampaignServer::status() const
{
    StatusInfo info;
    {
        std::lock_guard<std::mutex> lock(statsMutex_);
        info.campaigns = campaigns_;
        info.points = points_;
        info.simulated = simulated_;
        info.fromMemory = fromMemory_;
        info.fromDisk = fromDisk_;
        info.fromInflight = fromInflight_;
    }
    info.cachePoints = engine_->cache().size();
    info.inflight = engine_->inflightCount();
    info.threads = engine_->options().threads;
    if (store_) {
        info.hasStore = true;
        info.storeDir = store_->dir();
        info.storeBlobs = store_->size();
        info.storeHits = store_->hits();
        info.storeMisses = store_->misses();
        info.storeStores = store_->stores();
        info.storeCorrupt = store_->corrupt();
    }
    return info;
}

} // namespace tdm::driver::service
