#include "driver/service/server.hh"

#include <sstream>
#include <utility>

#include <sys/socket.h>

#include "driver/report/json_writer.hh"
#include "driver/spec/spec.hh"
#include "sim/logging.hh"

namespace tdm::driver::service {

namespace {

/** Protocol lines end in '\n'; bus payloads (SSE data) must not. */
std::string
chomp(std::string line)
{
    if (!line.empty() && line.back() == '\n')
        line.pop_back();
    return line;
}

} // namespace

CampaignServer::CampaignServer(const Address &addr, ServerOptions opts)
    : opts_(std::move(opts)),
      store_(opts_.storeDir.empty()
                 ? nullptr
                 : std::make_unique<ResultStore>(opts_.storeDir)),
      engine_([&] {
          campaign::EngineOptions eo = opts_.engine;
          eo.backend = store_.get();
          return std::make_unique<campaign::CampaignEngine>(eo);
      }()),
      listener_(addr), started_(std::chrono::steady_clock::now())
{
    if (!opts_.httpAddr.empty()) {
        bus_ = std::make_unique<ProgressBus>();
        registry_ = std::make_unique<CampaignRegistry>();
        dashboard_ = std::make_unique<Dashboard>(
            *registry_, *bus_, store_.get(),
            [this] { return status(); });
        http_ = std::make_unique<HttpServer>(
            parseAddress(opts_.httpAddr),
            [this](const HttpRequest &req, Socket &sock,
                   const std::atomic<bool> &stopping) {
                dashboard_->handle(req, sock, stopping);
            });
    }
    if (opts_.verbose) {
        sim::inform("campaign_serve: listening on ",
                    listener_.address().display(),
                    store_ ? " (store: " + store_->versionDir() + ")"
                           : " (no persistent store)");
        if (http_)
            sim::inform("campaign_serve: dashboard on ",
                        http_->address().display());
    }
}

CampaignServer::~CampaignServer()
{
    stop();
    // serve() joins its threads before returning; if serve() was never
    // entered there are none. A destructor racing an active serve() is
    // a caller bug, but join anything left to fail loudly, not UB.
    for (std::thread &t : threads_)
        if (t.joinable())
            t.join();
}

void
CampaignServer::serve()
{
    while (!stopping_.load()) {
        Socket sock = listener_.accept();
        if (!sock.valid()) {
            if (stopping_.load())
                break;
            // Listener failure (not a stop): nothing to accept on.
            sim::warn("campaign_serve: accept failed, stopping");
            break;
        }
        {
            std::lock_guard<std::mutex> lock(clientsMutex_);
            if (stopping_.load())
                break;
            clientFds_.push_back(sock.fd());
            threads_.emplace_back(
                [this, s = std::move(sock)]() mutable {
                    handleClient(std::move(s));
                });
        }
    }
    std::vector<std::thread> workers;
    {
        std::lock_guard<std::mutex> lock(clientsMutex_);
        workers.swap(threads_);
    }
    for (std::thread &t : workers)
        t.join();
}

void
CampaignServer::stop()
{
    stopping_.store(true);
    listener_.shutdownNow();
    // Dashboard first: closing the bus unblocks SSE sessions waiting
    // in Subscription::next(), then the HTTP stop joins their threads.
    if (bus_)
        bus_->close();
    if (http_)
        http_->stop();
    std::lock_guard<std::mutex> lock(clientsMutex_);
    for (int fd : clientFds_)
        ::shutdown(fd, SHUT_RDWR);
}

void
CampaignServer::handleClient(Socket sock)
{
    const int fd = sock.fd();
    if (opts_.verbose)
        sim::inform("campaign_serve: client connected");
    std::string line;
    while (!stopping_.load() && sock.readLine(line)) {
        if (line.empty())
            continue;
        Request req;
        std::string error;
        if (!parseRequest(line, req, error)) {
            std::ostringstream out;
            writeError(out, error);
            if (!sock.sendAll(out.str()))
                break;
            continue;
        }
        if (req.op == RequestOp::Ping) {
            std::ostringstream out;
            writePong(out);
            if (!sock.sendAll(out.str()))
                break;
        } else if (req.op == RequestOp::Status) {
            std::ostringstream out;
            writeStatus(out, status());
            if (!sock.sendAll(out.str()))
                break;
        } else if (req.op == RequestOp::Shutdown) {
            std::ostringstream out;
            writeBye(out);
            sock.sendAll(out.str());
            if (opts_.verbose)
                sim::inform(
                    "campaign_serve: shutdown requested by client");
            stop();
            break;
        } else {
            handleSubmit(sock, req.submit);
        }
    }
    sock.close();
    std::lock_guard<std::mutex> lock(clientsMutex_);
    for (std::size_t i = 0; i < clientFds_.size(); ++i) {
        if (clientFds_[i] == fd) {
            clientFds_[i] = clientFds_.back();
            clientFds_.pop_back();
            break;
        }
    }
}

void
CampaignServer::handleSubmit(Socket &sock, const SubmitRequest &req)
{
    campaign::Campaign c;
    try {
        c = buildCampaign(req);
    } catch (const std::exception &e) {
        std::ostringstream out;
        writeError(out, e.what());
        sock.sendAll(out.str());
        return;
    }
    const std::uint64_t id = nextId_.fetch_add(1);
    if (opts_.verbose)
        sim::inform("campaign_serve: submit #", id, " '", c.name, "' (",
                    c.points.size(), " points)");
    {
        std::ostringstream out;
        writeAccepted(out, id, c.name, c.points.size());
        const std::string line = out.str();
        if (!sock.sendAll(line))
            return;
        if (bus_) {
            registry_->accepted(id, c.name, c.points.size(),
                                c.metrics);
            bus_->publish("accepted", chomp(line));
        }
    }

    // Stream each point as the engine resolves it. A send failure
    // cannot abort the run (the engine owns the jobs; other clients
    // may be attached to them) — we just stop streaming. The point
    // JSON is rendered once and shared by the socket and the bus, so
    // a dashboard sees the exact bytes the client got.
    bool sendOk = true;
    const std::string metricsPattern = c.metrics;
    std::uint64_t bySource[5] = {0, 0, 0, 0, 0};
    std::size_t doneCount = 0;
    const campaign::CampaignResult result = engine_->run(
        c, [&](const campaign::JobResult &job, std::size_t index,
               std::size_t total) {
            if (!sendOk && !bus_)
                return;
            std::ostringstream out;
            writePoint(out, id, job, index, total, metricsPattern);
            const std::string line = out.str();
            if (sendOk)
                sendOk = sock.sendAll(line);
            if (!bus_)
                return;
            registry_->point(id, job, index);
            bus_->publish("point", chomp(line));
            // The progress event is dashboard sugar: completion
            // fraction, per-source split, and a naive ETA from the
            // mean per-point pace so far.
            ++doneCount;
            ++bySource[static_cast<int>(job.source)];
            const double elapsed = job.doneAtMs;
            const double eta =
                (doneCount > 0 && doneCount < total)
                    ? elapsed / static_cast<double>(doneCount) *
                          static_cast<double>(total - doneCount)
                    : 0.0;
            std::ostringstream pr;
            pr << "{\"id\":" << id << ",\"done\":" << doneCount
               << ",\"total\":" << total
               << ",\"served\":{\"simulated\":" << bySource[0]
               << ",\"memory\":" << bySource[1]
               << ",\"disk\":" << bySource[2]
               << ",\"inflight\":" << bySource[3]
               << ",\"forked\":" << bySource[4]
               << "},\"elapsed_ms\":";
            report::jsonNumber(pr, elapsed);
            pr << ",\"eta_ms\":";
            report::jsonNumber(pr, eta);
            pr << "}";
            bus_->publish("progress", pr.str());
        });

    {
        std::lock_guard<std::mutex> lock(statsMutex_);
        ++campaigns_;
        points_ += result.jobs.size();
        simulated_ += result.simulated;
        fromMemory_ += result.fromMemory;
        fromDisk_ += result.fromDisk;
        fromInflight_ += result.fromInflight;
        fromForked_ += result.fromForked;
    }
    if (opts_.verbose)
        sim::inform("campaign_serve: submit #", id, " done: ",
                    result.simulated, " simulated, ",
                    result.fromForked, " forked, ",
                    result.fromMemory, " memory, ", result.fromDisk,
                    " disk, ", result.fromInflight, " inflight");
    std::ostringstream out;
    writeDone(out, id, result);
    const std::string line = out.str();
    if (bus_) {
        registry_->done(id, result);
        bus_->publish("done", chomp(line));
    }
    if (sendOk)
        sock.sendAll(line);
}

StatusInfo
CampaignServer::status() const
{
    StatusInfo info;
    {
        std::lock_guard<std::mutex> lock(statsMutex_);
        info.campaigns = campaigns_;
        info.points = points_;
        info.simulated = simulated_;
        info.fromMemory = fromMemory_;
        info.fromDisk = fromDisk_;
        info.fromInflight = fromInflight_;
        info.fromForked = fromForked_;
    }
    info.cachePoints = engine_->cache().size();
    info.inflight = engine_->inflightCount();
    info.threads = engine_->options().threads;
    info.uptimeMs = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - started_)
                        .count();
    if (store_) {
        const StoreStats stats = store_->stats();
        info.hasStore = true;
        info.storeDir = store_->dir();
        info.storeBlobs = stats.blobs;
        info.storeBytes = stats.bytes;
        info.storeHits = stats.hits;
        info.storeMisses = stats.misses;
        info.storeStores = stats.stores;
        info.storeCorrupt = stats.corrupt;
    }
    if (http_) {
        info.hasHttp = true;
        info.httpAddr = http_->address().display();
        info.httpRequests = http_->requests();
        info.sseSubscribers = bus_->subscribers();
        info.busPublished = bus_->published();
        info.busDropped = bus_->dropped();
    }
    return info;
}

} // namespace tdm::driver::service
