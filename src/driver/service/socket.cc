#include "driver/service/socket.hh"

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <utility>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace tdm::driver::service {

namespace {

[[noreturn]] void
sockError(const std::string &what)
{
    throw std::runtime_error(what + ": " + std::strerror(errno));
}

/** sockaddr_un for @p path; rejects paths that do not fit. */
sockaddr_un
unixAddr(const std::string &path)
{
    sockaddr_un sa{};
    sa.sun_family = AF_UNIX;
    if (path.empty() || path.size() >= sizeof sa.sun_path)
        throw std::runtime_error("unix socket path too long: " + path);
    std::memcpy(sa.sun_path, path.c_str(), path.size() + 1);
    return sa;
}

sockaddr_in
tcpAddr(std::uint16_t port)
{
    sockaddr_in sa{};
    sa.sin_family = AF_INET;
    sa.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    sa.sin_port = htons(port);
    return sa;
}

} // namespace

std::string
Address::display() const
{
    if (isUnix)
        return "unix:" + path;
    return "tcp:127.0.0.1:" + std::to_string(port);
}

Address
parseAddress(const std::string &text)
{
    Address addr;
    if (text.rfind("unix:", 0) == 0) {
        addr.isUnix = true;
        addr.path = text.substr(5);
        if (addr.path.empty())
            throw std::runtime_error(
                "empty unix socket path in '" + text + "'");
        return addr;
    }
    if (text.rfind("tcp:", 0) == 0) {
        const std::string rest = text.substr(4);
        const auto colon = rest.rfind(':');
        if (colon == std::string::npos)
            throw std::runtime_error(
                "expected tcp:HOST:PORT in '" + text + "'");
        const std::string host = rest.substr(0, colon);
        const std::string portText = rest.substr(colon + 1);
        if (host != "127.0.0.1" && host != "localhost")
            throw std::runtime_error(
                "service sockets are loopback-only (got host '" +
                host + "'); use 127.0.0.1, localhost, or unix:PATH");
        char *end = nullptr;
        errno = 0;
        const unsigned long port =
            std::strtoul(portText.c_str(), &end, 10);
        if (errno != 0 || end == portText.c_str() || *end ||
            port > 65535)
            throw std::runtime_error("bad port in '" + text + "'");
        addr.port = static_cast<std::uint16_t>(port);
        return addr;
    }
    throw std::runtime_error(
        "address must be unix:PATH or tcp:HOST:PORT (got '" + text +
        "')");
}

Socket::~Socket() { close(); }

Socket::Socket(Socket &&other) noexcept
    : fd_(std::exchange(other.fd_, -1)), buf_(std::move(other.buf_))
{
}

Socket &
Socket::operator=(Socket &&other) noexcept
{
    if (this != &other) {
        close();
        fd_ = std::exchange(other.fd_, -1);
        buf_ = std::move(other.buf_);
    }
    return *this;
}

void
Socket::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
    buf_.clear();
}

bool
Socket::sendAll(const std::string &data)
{
    std::size_t off = 0;
    while (off < data.size()) {
        const ssize_t n = ::send(fd_, data.data() + off,
                                 data.size() - off, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        off += static_cast<std::size_t>(n);
    }
    return true;
}

bool
Socket::readLine(std::string &line)
{
    while (true) {
        const auto nl = buf_.find('\n');
        if (nl != std::string::npos) {
            line = buf_.substr(0, nl);
            buf_.erase(0, nl + 1);
            return true;
        }
        char chunk[4096];
        const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        if (n == 0) {
            // EOF: hand back a final unterminated line if present.
            if (buf_.empty())
                return false;
            line = std::move(buf_);
            buf_.clear();
            return true;
        }
        buf_.append(chunk, static_cast<std::size_t>(n));
    }
}

long
Socket::readSome(char *buf, std::size_t cap)
{
    while (true) {
        const ssize_t n = ::recv(fd_, buf, cap, 0);
        if (n >= 0)
            return static_cast<long>(n);
        if (errno == EINTR)
            continue;
        return -1;
    }
}

Listener::Listener(const Address &addr) : addr_(addr)
{
    if (addr_.isUnix) {
        fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (fd_ < 0)
            sockError("socket(unix)");
        // A previous daemon instance may have left its socket file; a
        // stale one makes bind fail with EADDRINUSE.
        ::unlink(addr_.path.c_str());
        const sockaddr_un sa = unixAddr(addr_.path);
        if (::bind(fd_, reinterpret_cast<const sockaddr *>(&sa),
                   sizeof sa) < 0) {
            ::close(fd_);
            fd_ = -1;
            sockError("bind(" + addr_.display() + ")");
        }
    } else {
        fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
        if (fd_ < 0)
            sockError("socket(tcp)");
        const int one = 1;
        ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
        const sockaddr_in sa = tcpAddr(addr_.port);
        if (::bind(fd_, reinterpret_cast<const sockaddr *>(&sa),
                   sizeof sa) < 0) {
            ::close(fd_);
            fd_ = -1;
            sockError("bind(" + addr_.display() + ")");
        }
        if (addr_.port == 0) {
            sockaddr_in bound{};
            socklen_t len = sizeof bound;
            if (::getsockname(
                    fd_, reinterpret_cast<sockaddr *>(&bound), &len) <
                0) {
                ::close(fd_);
                fd_ = -1;
                sockError("getsockname");
            }
            addr_.port = ntohs(bound.sin_port);
        }
    }
    if (::listen(fd_, 64) < 0) {
        ::close(fd_);
        fd_ = -1;
        sockError("listen(" + addr_.display() + ")");
    }
}

Listener::~Listener()
{
    if (fd_ >= 0)
        ::close(fd_);
    if (addr_.isUnix)
        ::unlink(addr_.path.c_str());
}

Socket
Listener::accept()
{
    while (true) {
        const int fd = ::accept(fd_, nullptr, nullptr);
        if (fd >= 0)
            return Socket(fd);
        if (errno == EINTR)
            continue;
        return Socket();
    }
}

void
Listener::shutdownNow()
{
    if (fd_ >= 0)
        ::shutdown(fd_, SHUT_RDWR);
}

Socket
connectTo(const Address &addr)
{
    if (addr.isUnix) {
        const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (fd < 0)
            sockError("socket(unix)");
        const sockaddr_un sa = unixAddr(addr.path);
        if (::connect(fd, reinterpret_cast<const sockaddr *>(&sa),
                      sizeof sa) < 0) {
            const int err = errno;
            ::close(fd);
            errno = err;
            sockError("connect(" + addr.display() + ")");
        }
        return Socket(fd);
    }
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        sockError("socket(tcp)");
    const sockaddr_in sa = tcpAddr(addr.port);
    if (::connect(fd, reinterpret_cast<const sockaddr *>(&sa),
                  sizeof sa) < 0) {
        const int err = errno;
        ::close(fd);
        errno = err;
        sockError("connect(" + addr.display() + ")");
    }
    return Socket(fd);
}

} // namespace tdm::driver::service
