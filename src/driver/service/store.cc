#include "driver/service/store.hh"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>

#include <unistd.h>

#include "driver/campaign/fingerprint.hh"
#include "sim/logging.hh"

namespace fs = std::filesystem;

namespace tdm::driver::service {

namespace {

constexpr const char *kMagic = "tdmstore";
constexpr unsigned kFormatVersion = 1;

/** 17 significant digits: parses back bit-exactly (and "inf"/"nan"
 *  survive the round-trip through strtod). */
std::string
fmtDouble(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    return buf;
}

void
putU64(std::ostream &os, const char *name, std::uint64_t v)
{
    os << "f " << name << ' ' << v << '\n';
}

void
putF64(std::ostream &os, const char *name, double v)
{
    os << "f " << name << ' ' << fmtDouble(v) << '\n';
}

void
putPhases(std::ostream &os, const char *prefix,
          const cpu::PhaseBreakdown &p)
{
    std::ostringstream name;
    for (const auto &[suffix, value] :
         {std::pair<const char *, sim::Tick>{"deps", p.deps},
          {"sched", p.sched},
          {"exec", p.exec},
          {"idle", p.idle}}) {
        name.str("");
        name << prefix << '.' << suffix;
        putU64(os, name.str().c_str(), value);
    }
}

/**
 * Field accessor table: one row per scalar RunSummary field, shared by
 * the writer (via the blob layout above) and the reader. Every field
 * must appear exactly once in a blob or the load is rejected.
 */
struct FieldRef
{
    enum Kind { U64, F64 } kind;
    // Exactly one of these is meaningful per row.
    std::uint64_t *u64;
    double *f64;
};

std::map<std::string, FieldRef>
fieldTable(RunSummary &s, std::uint64_t &completed,
           std::uint64_t &mCompleted, std::uint64_t &numTasks)
{
    std::map<std::string, FieldRef> t;
    auto u = [&](const char *n, std::uint64_t &v) {
        t[n] = {FieldRef::U64, &v, nullptr};
    };
    auto d = [&](const char *n, double &v) {
        t[n] = {FieldRef::F64, nullptr, &v};
    };
    u("completed", completed);
    u("makespan", s.makespan);
    d("time_ms", s.timeMs);
    d("energy_j", s.energyJ);
    d("edp", s.edp);
    d("avg_watts", s.avgWatts);
    u("num_tasks", numTasks);
    d("avg_task_us", s.avgTaskUs);

    core::MachineResult &m = s.machine;
    u("m.completed", mCompleted);
    u("m.makespan", m.makespan);
    d("m.time_ms", m.timeMs);
    u("m.master.deps", m.master.deps);
    u("m.master.sched", m.master.sched);
    u("m.master.exec", m.master.exec);
    u("m.master.idle", m.master.idle);
    u("m.workers.deps", m.workersTotal.deps);
    u("m.workers.sched", m.workersTotal.sched);
    u("m.workers.exec", m.workersTotal.exec);
    u("m.workers.idle", m.workersTotal.idle);
    u("m.chip.deps", m.chipTotal.deps);
    u("m.chip.sched", m.chipTotal.sched);
    u("m.chip.exec", m.chipTotal.exec);
    u("m.chip.idle", m.chipTotal.idle);
    d("m.energy_j", m.energyJ);
    d("m.edp", m.edp);
    d("m.avg_watts", m.avgWatts);
    u("m.tasks_executed", m.tasksExecuted);
    u("m.dmu_blocked_ops", m.dmuBlockedOps);
    u("m.dmu_accesses", m.dmuAccesses);
    d("m.dat_avg_occupied_sets", m.datAvgOccupiedSets);
    u("m.steals", m.steals);
    d("m.master_creation_fraction", m.masterCreationFraction);
    return t;
}

} // namespace

void
writeSummaryBlob(std::ostream &os, const std::string &key,
                 const RunSummary &summary, unsigned schema_version)
{
    // The payload (everything between the header and the checksum
    // line) is built separately so the checksum can cover it.
    std::ostringstream payload;
    payload << "key " << key << '\n';

    const core::MachineResult &m = summary.machine;
    putU64(payload, "completed", summary.completed ? 1 : 0);
    putU64(payload, "makespan", summary.makespan);
    putF64(payload, "time_ms", summary.timeMs);
    putF64(payload, "energy_j", summary.energyJ);
    putF64(payload, "edp", summary.edp);
    putF64(payload, "avg_watts", summary.avgWatts);
    putU64(payload, "num_tasks", summary.numTasks);
    putF64(payload, "avg_task_us", summary.avgTaskUs);
    putU64(payload, "m.completed", m.completed ? 1 : 0);
    putU64(payload, "m.makespan", m.makespan);
    putF64(payload, "m.time_ms", m.timeMs);
    putPhases(payload, "m.master", m.master);
    putPhases(payload, "m.workers", m.workersTotal);
    putPhases(payload, "m.chip", m.chipTotal);
    putF64(payload, "m.energy_j", m.energyJ);
    putF64(payload, "m.edp", m.edp);
    putF64(payload, "m.avg_watts", m.avgWatts);
    putU64(payload, "m.tasks_executed", m.tasksExecuted);
    putU64(payload, "m.dmu_blocked_ops", m.dmuBlockedOps);
    putU64(payload, "m.dmu_accesses", m.dmuAccesses);
    putF64(payload, "m.dat_avg_occupied_sets", m.datAvgOccupiedSets);
    putU64(payload, "m.steals", m.steals);
    putF64(payload, "m.master_creation_fraction",
           m.masterCreationFraction);

    payload << "metrics " << m.metrics.size() << '\n';
    for (const auto &[k, v] : m.metrics.entries())
        payload << "m " << k << ' ' << fmtDouble(v) << '\n';

    const std::string body = payload.str();
    char digest[17];
    std::snprintf(digest, sizeof digest, "%016" PRIx64,
                  campaign::fnv1a64(body));
    os << kMagic << ' ' << kFormatVersion << " schema "
       << schema_version << '\n'
       << body << "sum " << digest << '\n'
       << "end\n";
}

bool
readSummaryBlob(std::istream &is, std::string &key_out,
                RunSummary &summary_out, unsigned schema_version)
{
    std::string line;
    if (!std::getline(is, line))
        return false;
    {
        std::istringstream header(line);
        std::string magic, schemaWord;
        unsigned format = 0, schema = 0;
        if (!(header >> magic >> format >> schemaWord >> schema) ||
            magic != kMagic || format != kFormatVersion ||
            schemaWord != "schema" || schema != schema_version)
            return false;
    }

    std::ostringstream body;
    RunSummary s;
    std::uint64_t completed = 0, mCompleted = 0, numTasks = 0;
    auto fields = fieldTable(s, completed, mCompleted, numTasks);
    const std::size_t fieldsExpected = fields.size();
    std::size_t fieldsSeen = 0;
    std::string key;
    bool haveKey = false;
    std::size_t metricsExpected = 0, metricsSeen = 0;
    bool inMetrics = false;

    while (std::getline(is, line)) {
        if (line.rfind("sum ", 0) == 0) {
            char digest[17];
            std::snprintf(digest, sizeof digest, "%016" PRIx64,
                          campaign::fnv1a64(body.str()));
            if (line.substr(4) != digest)
                return false;
            // Everything present and accounted for? (fields shrinks
            // as names are consumed, so compare against the original
            // count.)
            if (!haveKey || fieldsSeen != fieldsExpected ||
                metricsSeen != metricsExpected)
                return false;
            if (!std::getline(is, line) || line != "end")
                return false;
            s.completed = completed != 0;
            s.machine.completed = mCompleted != 0;
            if (numTasks > UINT32_MAX)
                return false;
            s.numTasks = static_cast<std::uint32_t>(numTasks);
            key_out = key;
            summary_out = s;
            return true;
        }
        body << line << '\n';

        std::istringstream ls(line);
        std::string tag;
        if (!(ls >> tag))
            return false;
        if (tag == "key") {
            if (haveKey || inMetrics)
                return false;
            // The key is the remainder of the line, spaces included.
            const auto pos = line.find(' ');
            if (pos == std::string::npos || pos + 1 >= line.size())
                return false;
            key = line.substr(pos + 1);
            haveKey = true;
        } else if (tag == "f") {
            if (inMetrics)
                return false;
            std::string name, value;
            if (!(ls >> name >> value))
                return false;
            auto it = fields.find(name);
            if (it == fields.end())
                return false;
            char *endp = nullptr;
            if (it->second.kind == FieldRef::U64) {
                errno = 0;
                const std::uint64_t v =
                    std::strtoull(value.c_str(), &endp, 10);
                if (errno != 0 || endp == value.c_str() || *endp)
                    return false;
                *it->second.u64 = v;
            } else {
                const double v = std::strtod(value.c_str(), &endp);
                if (endp == value.c_str() || *endp)
                    return false;
                *it->second.f64 = v;
            }
            // Reject duplicate assignments of the same field.
            fields.erase(it);
            ++fieldsSeen;
        } else if (tag == "metrics") {
            if (inMetrics || !(ls >> metricsExpected))
                return false;
            inMetrics = true;
        } else if (tag == "m") {
            if (!inMetrics)
                return false;
            std::string name, value;
            if (!(ls >> name >> value))
                return false;
            char *endp = nullptr;
            const double v = std::strtod(value.c_str(), &endp);
            if (endp == value.c_str() || *endp)
                return false;
            s.machine.metrics.set(name, v);
            ++metricsSeen;
        } else {
            return false;
        }
    }
    return false; // truncated: EOF before the sum/end trailer
}

ResultStore::ResultStore(const std::string &dir,
                         unsigned schema_version)
    : dir_(dir), schemaVersion_(schema_version)
{
    std::string vdir = "v";
    vdir += std::to_string(schemaVersion_);
    versionDir_ = (fs::path(dir_) / vdir).string();
    std::error_code ec;
    fs::create_directories(versionDir_, ec);
    if (ec || !fs::is_directory(versionDir_))
        throw std::runtime_error("result store: cannot create '" +
                                 versionDir_ + "': " + ec.message());
    scanIndex();
}

void
ResultStore::scanIndex()
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::error_code ec;
    for (fs::directory_iterator it(versionDir_, ec), end;
         !ec && it != end; it.increment(ec)) {
        const std::string name = it->path().filename().string();
        // <16 hex>.result — anything else (temp files, strays) is
        // ignored.
        if (name.size() != 23 ||
            name.compare(16, std::string::npos, ".result") != 0)
            continue;
        if (name.find_first_not_of("0123456789abcdef") != 16)
            continue;
        std::error_code sizeEc;
        const std::uintmax_t size = it->file_size(sizeEc);
        const std::uint64_t bytes =
            sizeEc ? 0 : static_cast<std::uint64_t>(size);
        index_.emplace(name.substr(0, 16), bytes);
        bytes_ += bytes;
    }
}

std::string
ResultStore::pathForKey(const std::string &key) const
{
    return pathForDigest(campaign::digestOfKey(key));
}

std::string
ResultStore::pathForDigest(const std::string &digest) const
{
    return (fs::path(versionDir_) / (digest + ".result")).string();
}

std::optional<RunSummary>
ResultStore::fetch(const std::string &key)
{
    const std::string digest = campaign::digestOfKey(key);
    std::lock_guard<std::mutex> lock(mutex_);
    if (index_.find(digest) == index_.end()) {
        ++misses_;
        return std::nullopt;
    }
    std::ifstream in(fs::path(versionDir_) / (digest + ".result"));
    std::string storedKey;
    RunSummary summary;
    if (!in || !readSummaryBlob(in, storedKey, summary,
                                schemaVersion_)) {
        // Unreadable or damaged blob: drop it from the index and treat
        // as a miss — the engine re-simulates and re-publishes.
        ++corrupt_;
        ++misses_;
        if (auto it = index_.find(digest); it != index_.end()) {
            bytes_ -= it->second;
            index_.erase(it);
        }
        sim::warn("result store: corrupt blob for ", digest,
                  " ignored (will re-simulate)");
        return std::nullopt;
    }
    if (storedKey != key) {
        // Digest collision with a different spec: a miss, not an
        // error. (The blob itself is intact, so keep it indexed.)
        ++misses_;
        return std::nullopt;
    }
    ++hits_;
    return summary;
}

void
ResultStore::publish(const std::string &key, const RunSummary &summary)
{
    const std::string digest = campaign::digestOfKey(key);
    std::lock_guard<std::mutex> lock(mutex_);
    if (index_.count(digest))
        return; // already persisted (results are pure in their key)

    // Unique temp name in the same directory, then an atomic rename:
    // concurrent readers only ever see absent or complete blobs.
    const std::string tmpName = digest + ".tmp." +
                                std::to_string(::getpid()) + "." +
                                std::to_string(tmpSeq_++);
    const fs::path tmpPath = fs::path(versionDir_) / tmpName;
    const fs::path finalPath =
        fs::path(versionDir_) / (digest + ".result");
    // Render first so the on-disk byte size is known for the stats
    // accounting (and a serialization problem never leaves a torn
    // temp file).
    std::ostringstream blob;
    writeSummaryBlob(blob, key, summary, schemaVersion_);
    const std::string bytes = blob.str();
    {
        std::ofstream out(tmpPath,
                          std::ios::binary | std::ios::trunc);
        if (out)
            out.write(bytes.data(),
                      static_cast<std::streamsize>(bytes.size()));
        if (!out) {
            sim::warn("result store: cannot write ",
                      tmpPath.string(), " (entry dropped)");
            std::error_code ec;
            fs::remove(tmpPath, ec);
            return;
        }
    }
    std::error_code ec;
    fs::rename(tmpPath, finalPath, ec);
    if (ec) {
        sim::warn("result store: rename to ", finalPath.string(),
                  " failed: ", ec.message(), " (entry dropped)");
        fs::remove(tmpPath, ec);
        return;
    }
    // The early count() check makes a duplicate unlikely, but another
    // writer sharing this directory could have indexed the digest via
    // a rescan — never double-count its bytes.
    if (index_.emplace(digest, bytes.size()).second)
        bytes_ += bytes.size();
    ++stores_;
}

std::size_t
ResultStore::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return index_.size();
}

std::uint64_t
ResultStore::hits() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return hits_;
}

std::uint64_t
ResultStore::misses() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return misses_;
}

std::uint64_t
ResultStore::stores() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return stores_;
}

std::uint64_t
ResultStore::corrupt() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return corrupt_;
}

StoreStats
ResultStore::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    StoreStats s;
    s.blobs = index_.size();
    s.bytes = bytes_;
    s.hits = hits_;
    s.misses = misses_;
    s.stores = stores_;
    s.corrupt = corrupt_;
    return s;
}

std::vector<std::pair<std::string, std::uint64_t>>
ResultStore::list() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return {index_.begin(), index_.end()};
}

bool
ResultStore::loadByDigest(const std::string &digest,
                          std::string &key_out,
                          RunSummary &summary_out) const
{
    if (digest.size() != 16 ||
        digest.find_first_not_of("0123456789abcdef")
            != std::string::npos)
        return false;
    // No lock: blobs are only ever created whole (atomic rename), so
    // reading outside the index mutex sees absent or complete files.
    std::ifstream in(pathForDigest(digest), std::ios::binary);
    if (!in)
        return false;
    return readSummaryBlob(in, key_out, summary_out, schemaVersion_);
}

bool
ResultStore::readRawBlob(const std::string &digest,
                         std::string &bytes_out) const
{
    if (digest.size() != 16 ||
        digest.find_first_not_of("0123456789abcdef")
            != std::string::npos)
        return false;
    std::ifstream in(pathForDigest(digest), std::ios::binary);
    if (!in)
        return false;
    std::ostringstream os;
    os << in.rdbuf();
    bytes_out = os.str();
    return true;
}

} // namespace tdm::driver::service

