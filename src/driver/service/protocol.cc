#include "driver/service/protocol.hh"

#include <cstdlib>
#include <ostream>
#include <sstream>

#include "driver/report/json_writer.hh"
#include "driver/spec/campaign_file.hh"
#include "driver/spec/spec.hh"

namespace tdm::driver::service {

// ---- JSON reader ---------------------------------------------------------

namespace {

using report::jsonEscape;
using report::jsonNumber;

/** Recursive-descent reader over one in-memory document. */
class JsonReader
{
  public:
    explicit JsonReader(const std::string &text) : s_(text) {}

    bool parse(JsonValue &out, std::string &error)
    {
        skipWs();
        if (!value(out, 0)) {
            error = error_.empty() ? "malformed JSON" : error_;
            return false;
        }
        skipWs();
        if (pos_ != s_.size()) {
            error = "trailing characters after JSON value";
            return false;
        }
        return true;
    }

  private:
    static constexpr int kMaxDepth = 64;

    bool fail(const std::string &msg)
    {
        if (error_.empty())
            error_ = msg + " at offset " + std::to_string(pos_);
        return false;
    }

    void skipWs()
    {
        while (pos_ < s_.size() &&
               (s_[pos_] == ' ' || s_[pos_] == '\t' ||
                s_[pos_] == '\n' || s_[pos_] == '\r'))
            ++pos_;
    }

    bool literal(const char *word, std::size_t len)
    {
        if (s_.compare(pos_, len, word) != 0)
            return fail(std::string("expected '") + word + "'");
        pos_ += len;
        return true;
    }

    static void appendUtf8(std::string &out, unsigned cp)
    {
        if (cp < 0x80) {
            out += static_cast<char>(cp);
        } else if (cp < 0x800) {
            out += static_cast<char>(0xc0 | (cp >> 6));
            out += static_cast<char>(0x80 | (cp & 0x3f));
        } else if (cp < 0x10000) {
            out += static_cast<char>(0xe0 | (cp >> 12));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
            out += static_cast<char>(0x80 | (cp & 0x3f));
        } else {
            out += static_cast<char>(0xf0 | (cp >> 18));
            out += static_cast<char>(0x80 | ((cp >> 12) & 0x3f));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
            out += static_cast<char>(0x80 | (cp & 0x3f));
        }
    }

    bool hex4(unsigned &out)
    {
        if (pos_ + 4 > s_.size())
            return fail("truncated \\u escape");
        out = 0;
        for (int i = 0; i < 4; ++i) {
            const char c = s_[pos_++];
            out <<= 4;
            if (c >= '0' && c <= '9')
                out |= static_cast<unsigned>(c - '0');
            else if (c >= 'a' && c <= 'f')
                out |= static_cast<unsigned>(c - 'a' + 10);
            else if (c >= 'A' && c <= 'F')
                out |= static_cast<unsigned>(c - 'A' + 10);
            else
                return fail("bad hex digit in \\u escape");
        }
        return true;
    }

    bool string(std::string &out)
    {
        if (pos_ >= s_.size() || s_[pos_] != '"')
            return fail("expected string");
        ++pos_;
        out.clear();
        while (pos_ < s_.size()) {
            const char c = s_[pos_];
            if (c == '"') {
                ++pos_;
                return true;
            }
            if (static_cast<unsigned char>(c) < 0x20)
                return fail("unescaped control character in string");
            if (c != '\\') {
                out += c;
                ++pos_;
                continue;
            }
            if (++pos_ >= s_.size())
                return fail("truncated escape");
            const char e = s_[pos_++];
            switch (e) {
            case '"': out += '"'; break;
            case '\\': out += '\\'; break;
            case '/': out += '/'; break;
            case 'b': out += '\b'; break;
            case 'f': out += '\f'; break;
            case 'n': out += '\n'; break;
            case 'r': out += '\r'; break;
            case 't': out += '\t'; break;
            case 'u': {
                unsigned cp = 0;
                if (!hex4(cp))
                    return false;
                if (cp >= 0xd800 && cp <= 0xdbff) {
                    // High surrogate: a low surrogate must follow.
                    if (s_.compare(pos_, 2, "\\u") != 0)
                        return fail("unpaired surrogate");
                    pos_ += 2;
                    unsigned lo = 0;
                    if (!hex4(lo))
                        return false;
                    if (lo < 0xdc00 || lo > 0xdfff)
                        return fail("unpaired surrogate");
                    cp = 0x10000 + ((cp - 0xd800) << 10) +
                         (lo - 0xdc00);
                } else if (cp >= 0xdc00 && cp <= 0xdfff) {
                    return fail("unpaired surrogate");
                }
                appendUtf8(out, cp);
                break;
            }
            default:
                return fail("unknown escape");
            }
        }
        return fail("unterminated string");
    }

    bool number(JsonValue &out)
    {
        const std::size_t start = pos_;
        if (pos_ < s_.size() && s_[pos_] == '-')
            ++pos_;
        auto digits = [&] {
            const std::size_t before = pos_;
            while (pos_ < s_.size() && s_[pos_] >= '0' &&
                   s_[pos_] <= '9')
                ++pos_;
            return pos_ > before;
        };
        const std::size_t int_start = pos_;
        if (!digits())
            return fail("malformed number");
        // JSON forbids leading zeros: "0" is fine, "01" is not.
        if (s_[int_start] == '0' && pos_ - int_start > 1)
            return fail("malformed number");
        if (pos_ < s_.size() && s_[pos_] == '.') {
            ++pos_;
            if (!digits())
                return fail("malformed number");
        }
        if (pos_ < s_.size() && (s_[pos_] == 'e' || s_[pos_] == 'E')) {
            ++pos_;
            if (pos_ < s_.size() &&
                (s_[pos_] == '+' || s_[pos_] == '-'))
                ++pos_;
            if (!digits())
                return fail("malformed number");
        }
        out.kind = JsonValue::Kind::Number;
        out.text = s_.substr(start, pos_ - start);
        out.number = std::strtod(out.text.c_str(), nullptr);
        return true;
    }

    bool value(JsonValue &out, int depth)
    {
        if (depth > kMaxDepth)
            return fail("nesting too deep");
        if (pos_ >= s_.size())
            return fail("unexpected end of input");
        switch (s_[pos_]) {
        case 'n':
            out.kind = JsonValue::Kind::Null;
            return literal("null", 4);
        case 't':
            out.kind = JsonValue::Kind::Bool;
            out.boolean = true;
            return literal("true", 4);
        case 'f':
            out.kind = JsonValue::Kind::Bool;
            out.boolean = false;
            return literal("false", 5);
        case '"':
            out.kind = JsonValue::Kind::String;
            return string(out.text);
        case '[': {
            ++pos_;
            out.kind = JsonValue::Kind::Array;
            skipWs();
            if (pos_ < s_.size() && s_[pos_] == ']') {
                ++pos_;
                return true;
            }
            while (true) {
                JsonValue item;
                skipWs();
                if (!value(item, depth + 1))
                    return false;
                out.items.push_back(std::move(item));
                skipWs();
                if (pos_ >= s_.size())
                    return fail("unterminated array");
                if (s_[pos_] == ',') {
                    ++pos_;
                    continue;
                }
                if (s_[pos_] == ']') {
                    ++pos_;
                    return true;
                }
                return fail("expected ',' or ']'");
            }
        }
        case '{': {
            ++pos_;
            out.kind = JsonValue::Kind::Object;
            skipWs();
            if (pos_ < s_.size() && s_[pos_] == '}') {
                ++pos_;
                return true;
            }
            while (true) {
                skipWs();
                std::string key;
                if (!string(key))
                    return false;
                skipWs();
                if (pos_ >= s_.size() || s_[pos_] != ':')
                    return fail("expected ':'");
                ++pos_;
                skipWs();
                JsonValue member;
                if (!value(member, depth + 1))
                    return false;
                out.members.emplace_back(std::move(key),
                                         std::move(member));
                skipWs();
                if (pos_ >= s_.size())
                    return fail("unterminated object");
                if (s_[pos_] == ',') {
                    ++pos_;
                    continue;
                }
                if (s_[pos_] == '}') {
                    ++pos_;
                    return true;
                }
                return fail("expected ',' or '}'");
            }
        }
        default:
            return number(out);
        }
    }

    const std::string &s_;
    std::size_t pos_ = 0;
    std::string error_;
};

} // namespace

const JsonValue *
JsonValue::find(const std::string &key) const
{
    if (kind != Kind::Object)
        return nullptr;
    for (const auto &[k, v] : members)
        if (k == key)
            return &v;
    return nullptr;
}

std::string
JsonValue::asString(const std::string &dflt) const
{
    return kind == Kind::String ? text : dflt;
}

double
JsonValue::asNumber(double dflt) const
{
    return kind == Kind::Number ? number : dflt;
}

bool
JsonValue::asBool(bool dflt) const
{
    return kind == Kind::Bool ? boolean : dflt;
}

bool
parseJson(const std::string &text, JsonValue &out, std::string &error)
{
    out = JsonValue{};
    return JsonReader(text).parse(out, error);
}

// ---- requests ------------------------------------------------------------

namespace {

/** Render a scalar JSON value as a spec value string (specs are
 *  stringly typed: numbers and bools pass through as written). */
bool
specValue(const JsonValue &v, std::string &out)
{
    switch (v.kind) {
    case JsonValue::Kind::String: out = v.text; return true;
    case JsonValue::Kind::Number: out = v.text; return true;
    case JsonValue::Kind::Bool:
        out = v.boolean ? "true" : "false";
        return true;
    default: return false;
    }
}

bool
specEntries(const JsonValue &obj,
            std::vector<std::pair<std::string, std::string>> &out,
            const char *what, std::string &error)
{
    if (!obj.isObject()) {
        error = std::string(what) + " must be an object";
        return false;
    }
    for (const auto &[k, v] : obj.members) {
        std::string value;
        if (!specValue(v, value)) {
            error = std::string(what) + "." + k +
                    " must be a string, number, or bool";
            return false;
        }
        out.emplace_back(k, value);
    }
    return true;
}

} // namespace

bool
parseRequest(const std::string &line, Request &out, std::string &error)
{
    JsonValue root;
    if (!parseJson(line, root, error))
        return false;
    if (!root.isObject()) {
        error = "request must be a JSON object";
        return false;
    }
    const JsonValue *op = root.find("op");
    if (!op || !op->isString()) {
        error = "missing \"op\"";
        return false;
    }
    out = Request{};
    if (op->text == "ping") {
        out.op = RequestOp::Ping;
        return true;
    }
    if (op->text == "status") {
        out.op = RequestOp::Status;
        return true;
    }
    if (op->text == "shutdown") {
        out.op = RequestOp::Shutdown;
        return true;
    }
    if (op->text != "submit") {
        error = "unknown op \"" + op->text + "\"";
        return false;
    }

    out.op = RequestOp::Submit;
    SubmitRequest &req = out.submit;
    if (const JsonValue *name = root.find("name"))
        req.name = name->asString();
    if (const JsonValue *metrics = root.find("metrics"))
        req.metrics = metrics->asString();
    if (const JsonValue *set = root.find("set"))
        if (!specEntries(*set, req.set, "set", error))
            return false;

    const JsonValue *campaign = root.find("campaign");
    const JsonValue *points = root.find("points");
    if ((campaign != nullptr) == (points != nullptr)) {
        error = "submit needs exactly one of \"campaign\" or "
                "\"points\"";
        return false;
    }
    if (campaign) {
        if (!campaign->isString()) {
            error = "\"campaign\" must be a string";
            return false;
        }
        req.campaignText = campaign->text;
        return true;
    }
    if (!points->isArray() || points->items.empty()) {
        error = "\"points\" must be a non-empty array";
        return false;
    }
    for (const JsonValue &p : points->items) {
        if (!p.isObject()) {
            error = "each point must be an object";
            return false;
        }
        SubmitRequest::Point point;
        if (const JsonValue *label = p.find("label"))
            point.label = label->asString();
        const JsonValue *spec = p.find("spec");
        if (!spec) {
            error = "each point needs a \"spec\" object";
            return false;
        }
        if (!specEntries(*spec, point.spec, "spec", error))
            return false;
        req.points.push_back(std::move(point));
    }
    return true;
}

campaign::Campaign
buildCampaign(const SubmitRequest &req)
{
    campaign::Campaign c;
    if (!req.campaignText.empty()) {
        std::istringstream in(req.campaignText);
        std::string origin = "submit:";
        origin += req.name.empty() ? "campaign" : req.name;
        c = spec::parseCampaignFile(in, origin).toCampaign();
        if (!req.name.empty())
            c.name = req.name;
    } else {
        c.name = req.name.empty() ? "submitted" : req.name;
        for (std::size_t i = 0; i < req.points.size(); ++i) {
            const SubmitRequest::Point &p = req.points[i];
            sim::Config cfg;
            for (const auto &[k, v] : p.spec)
                cfg.set(k, v);
            SweepPoint point;
            if (p.label.empty()) {
                point.label = "p";
                point.label += std::to_string(i);
            } else {
                point.label = p.label;
            }
            point.exp = spec::apply(cfg);
            c.points.push_back(std::move(point));
        }
    }
    for (SweepPoint &point : c.points)
        for (const auto &[k, v] : req.set)
            spec::applyKey(point.exp, k, v);
    if (!req.metrics.empty())
        c.metrics = req.metrics;
    return c;
}

// ---- responses -----------------------------------------------------------

void
writePong(std::ostream &os)
{
    os << "{\"event\":\"pong\"}\n";
}

void
writeBye(std::ostream &os)
{
    os << "{\"event\":\"bye\"}\n";
}

void
writeError(std::ostream &os, const std::string &message)
{
    os << "{\"event\":\"error\",\"message\":\"" << jsonEscape(message)
       << "\"}\n";
}

void
writeAccepted(std::ostream &os, std::uint64_t id,
              const std::string &name, std::size_t points)
{
    os << "{\"event\":\"accepted\",\"id\":" << id << ",\"name\":\""
       << jsonEscape(name) << "\",\"points\":" << points << "}\n";
}

void
writePoint(std::ostream &os, std::uint64_t id,
           const campaign::JobResult &job, std::size_t index,
           std::size_t total, const std::string &metrics_pattern)
{
    const RunSummary &s = job.summary;
    os << "{\"event\":\"point\",\"id\":" << id
       << ",\"index\":" << index << ",\"total\":" << total
       << ",\"label\":\"" << jsonEscape(job.label) << "\",\"digest\":\""
       << jsonEscape(job.digest) << "\",\"source\":\""
       << campaign::jobSourceName(job.source) << "\",\"cache_hit\":"
       << (job.cacheHit ? "true" : "false")
       << ",\"ok\":" << (job.ok() ? "true" : "false")
       << ",\"error\":\"" << jsonEscape(job.error) << "\",\"wall_ms\":";
    jsonNumber(os, job.wallMs);
    os << ",\"done_at_ms\":";
    jsonNumber(os, job.doneAtMs);
    os << ",\"completed\":" << (s.completed ? "true" : "false")
       << ",\"makespan\":" << s.makespan << ",\"time_ms\":";
    jsonNumber(os, s.timeMs);
    os << ",\"energy_j\":";
    jsonNumber(os, s.energyJ);
    os << ",\"edp\":";
    jsonNumber(os, s.edp);
    os << ",\"avg_watts\":";
    jsonNumber(os, s.avgWatts);
    os << ",\"num_tasks\":" << s.numTasks << ",\"avg_task_us\":";
    jsonNumber(os, s.avgTaskUs);
    os << ",\"tasks_executed\":" << s.machine.tasksExecuted
       << ",\"dmu_accesses\":" << s.machine.dmuAccesses
       << ",\"dmu_blocked_ops\":" << s.machine.dmuBlockedOps
       << ",\"steals\":" << s.machine.steals
       << ",\"master_creation_fraction\":";
    jsonNumber(os, s.machine.masterCreationFraction);
    os << ",\"metrics\":{";
    const sim::MetricSet selected =
        s.metrics().select(metrics_pattern);
    bool first = true;
    for (const auto &[k, v] : selected.entries()) {
        os << (first ? "" : ",") << "\"" << jsonEscape(k) << "\":";
        jsonNumber(os, v);
        first = false;
    }
    os << "}}\n";
}

void
writeDone(std::ostream &os, std::uint64_t id,
          const campaign::CampaignResult &result)
{
    os << "{\"event\":\"done\",\"id\":" << id << ",\"name\":\""
       << jsonEscape(result.name)
       << "\",\"points\":" << result.jobs.size()
       << ",\"simulated\":" << result.simulated
       << ",\"cache_hits\":" << result.cacheHits
       << ",\"from_memory\":" << result.fromMemory
       << ",\"from_disk\":" << result.fromDisk
       << ",\"from_inflight\":" << result.fromInflight
       << ",\"from_forked\":" << result.fromForked
       << ",\"warmups_shared\":" << result.warmupsShared
       << ",\"graph_builds\":" << result.graphBuilds
       << ",\"graph_shares\":" << result.graphShares
       << ",\"failures\":" << result.failures()
       << ",\"threads\":" << result.threads << ",\"wall_ms\":";
    jsonNumber(os, result.wallMs);
    os << "}\n";
}

void
writeStatus(std::ostream &os, const StatusInfo &info)
{
    os << "{\"event\":\"status\",\"campaigns\":" << info.campaigns
       << ",\"points\":" << info.points << ",\"served\":{\"simulated\":"
       << info.simulated << ",\"memory\":" << info.fromMemory
       << ",\"disk\":" << info.fromDisk
       << ",\"inflight\":" << info.fromInflight
       << ",\"forked\":" << info.fromForked
       << "},\"cache_points\":" << info.cachePoints
       << ",\"inflight\":" << info.inflight
       << ",\"threads\":" << info.threads << ",\"uptime_ms\":";
    jsonNumber(os, info.uptimeMs);
    os << ",\"store\":";
    if (info.hasStore) {
        os << "{\"dir\":\"" << jsonEscape(info.storeDir)
           << "\",\"blobs\":" << info.storeBlobs
           << ",\"bytes\":" << info.storeBytes
           << ",\"hits\":" << info.storeHits
           << ",\"misses\":" << info.storeMisses
           << ",\"stores\":" << info.storeStores
           << ",\"corrupt\":" << info.storeCorrupt << "}";
    } else {
        os << "null";
    }
    os << ",\"http\":";
    if (info.hasHttp) {
        os << "{\"addr\":\"" << jsonEscape(info.httpAddr)
           << "\",\"requests\":" << info.httpRequests
           << ",\"sse_subscribers\":" << info.sseSubscribers
           << ",\"events_published\":" << info.busPublished
           << ",\"events_dropped\":" << info.busDropped << "}";
    } else {
        os << "null";
    }
    os << "}\n";
}

// ---- client-side event decoding ------------------------------------------

namespace {

bool
sourceFromName(const std::string &name, campaign::JobSource &out)
{
    if (name == "simulated")
        out = campaign::JobSource::Simulated;
    else if (name == "memory")
        out = campaign::JobSource::Memory;
    else if (name == "disk")
        out = campaign::JobSource::Disk;
    else if (name == "inflight")
        out = campaign::JobSource::Inflight;
    else if (name == "forked")
        out = campaign::JobSource::Forked;
    else
        return false;
    return true;
}

} // namespace

bool
decodePointEvent(const JsonValue &event, campaign::JobResult &job,
                 std::size_t &index, std::size_t &total)
{
    if (!event.isObject())
        return false;
    const JsonValue *ev = event.find("event");
    if (!ev || ev->asString() != "point")
        return false;
    const JsonValue *idx = event.find("index");
    const JsonValue *tot = event.find("total");
    const JsonValue *label = event.find("label");
    const JsonValue *source = event.find("source");
    const JsonValue *metrics = event.find("metrics");
    if (!idx || !idx->isNumber() || !tot || !tot->isNumber() ||
        !label || !label->isString() || !source ||
        !source->isString() || !metrics || !metrics->isObject())
        return false;

    job = campaign::JobResult{};
    index = static_cast<std::size_t>(idx->number);
    total = static_cast<std::size_t>(tot->number);
    job.label = label->text;
    if (!sourceFromName(source->text, job.source))
        return false;
    // Forked points were simulated (from a snapshot), not cache-served.
    job.cacheHit = job.source != campaign::JobSource::Simulated
                && job.source != campaign::JobSource::Forked;

    if (const JsonValue *v = event.find("digest"))
        job.digest = v->asString();
    if (const JsonValue *v = event.find("error"))
        job.error = v->asString();
    if (const JsonValue *v = event.find("wall_ms"))
        job.wallMs = v->asNumber();
    if (const JsonValue *v = event.find("done_at_ms"))
        job.doneAtMs = v->asNumber();

    RunSummary &s = job.summary;
    if (const JsonValue *v = event.find("completed")) {
        s.completed = v->asBool();
        s.machine.completed = s.completed;
    }
    // Integers decode from the raw literal text so 64-bit tick counts
    // survive even past double precision.
    auto u64 = [&](const char *key, std::uint64_t &field) {
        if (const JsonValue *v = event.find(key))
            if (v->isNumber())
                field = std::strtoull(v->text.c_str(), nullptr, 10);
    };
    auto f64 = [&](const char *key, double &field) {
        if (const JsonValue *v = event.find(key))
            field = v->asNumber();
    };
    u64("makespan", s.makespan);
    f64("time_ms", s.timeMs);
    f64("energy_j", s.energyJ);
    f64("edp", s.edp);
    f64("avg_watts", s.avgWatts);
    if (const JsonValue *v = event.find("num_tasks"))
        s.numTasks = static_cast<std::uint32_t>(v->asNumber());
    f64("avg_task_us", s.avgTaskUs);
    u64("tasks_executed", s.machine.tasksExecuted);
    u64("dmu_accesses", s.machine.dmuAccesses);
    u64("dmu_blocked_ops", s.machine.dmuBlockedOps);
    u64("steals", s.machine.steals);
    f64("master_creation_fraction",
        s.machine.masterCreationFraction);
    s.machine.makespan = s.makespan;
    s.machine.timeMs = s.timeMs;
    s.machine.energyJ = s.energyJ;
    s.machine.edp = s.edp;
    s.machine.avgWatts = s.avgWatts;

    for (const auto &[k, v] : metrics->members) {
        if (!v.isNumber())
            return false;
        s.machine.metrics.set(k, v.number);
    }
    return true;
}

} // namespace tdm::driver::service
