/**
 * @file
 * Experiment driver: builds a workload, a machine and a runtime model,
 * runs the simulation, and summarizes the metrics the paper reports.
 */

#ifndef TDM_DRIVER_EXPERIMENT_HH
#define TDM_DRIVER_EXPERIMENT_HH

#include <memory>
#include <string>

#include "core/machine.hh"
#include "cpu/machine_config.hh"
#include "workloads/registry.hh"

namespace tdm::driver {

/**
 * One experiment = workload x runtime x scheduler x machine config.
 *
 * The scheduling policy lives in config.scheduler — the Machine reads
 * it from there, and the spec API binds it as the single `scheduler`
 * key. (It used to be duplicated as a second Experiment field that
 * run() stitched over the config one.)
 */
struct Experiment
{
    std::string workload = "cholesky";
    wl::WorkloadParams params{};
    core::RuntimeType runtime = core::RuntimeType::Software;
    cpu::MachineConfig config{};

    /** Deprecated shim for the removed duplicate field; the policy's
     *  one source of truth is config.scheduler. Read-only so writes
     *  migrate to config.scheduler (or the spec API, which validates
     *  the policy name). */
    [[deprecated("use config.scheduler")]] const std::string &
    scheduler() const {
        return config.scheduler;
    }
};

/**
 * Summary of one run: a thin typed view over the run's metric tree.
 *
 * The scalar fields below are populated from machine.metrics in run()
 * (one place), so the MetricSet — not this struct — is the source of
 * truth that flows through the campaign engine, the result cache and
 * the JSON/CSV writers. New measured quantities surface through the
 * metric registry without touching this struct.
 */
struct RunSummary
{
    bool completed = false;
    sim::Tick makespan = 0;
    double timeMs = 0.0;
    double energyJ = 0.0;
    double edp = 0.0;
    double avgWatts = 0.0;

    std::uint32_t numTasks = 0;
    double avgTaskUs = 0.0;

    core::MachineResult machine{};

    /** The run's full flattened metric tree ("dmu.tat.hits", ...,
     *  plus "workload.*" keys and "window.{warmup,roi,drain}.*"). */
    const sim::MetricSet &metrics() const { return machine.metrics; }
};

/**
 * Run one experiment. When the runtime uses the DMU, params.tdmOptimal
 * is implied for default granularities unless explicitly set by the
 * caller.
 */
RunSummary run(const Experiment &exp);

/**
 * Run one experiment on a pre-built shared graph (the campaign
 * engine's hot path: each distinct graph is built once per campaign
 * and shared read-only across worker threads, see driver::GraphCache).
 * @p graph must be the graph @p exp would build — i.e. built from
 * effectiveParams(exp); null falls back to building one. The summary
 * is byte-identical either way.
 */
RunSummary run(const Experiment &exp,
               std::shared_ptr<const rt::TaskGraph> graph);

/**
 * As above, additionally moving the run's time-resolved trace into
 * @p trace_out (see sim/trace.hh; empty unless exp.config.trace
 * enables categories). The summary is identical with or without
 * @p trace_out — capture is a move, not a re-run.
 */
RunSummary run(const Experiment &exp,
               std::shared_ptr<const rt::TaskGraph> graph,
               sim::TraceBuffer *trace_out);

/**
 * Build a RunSummary from a finished machine result: folds the
 * workload-shape facts of @p graph into the metric tree and populates
 * the typed scalar views. The tail of run(), shared with the
 * warm-start ForkGroupRunner so forked and cold summaries are built by
 * the same code.
 */
RunSummary summarize(core::MachineResult mr, const rt::TaskGraph &graph);

/** Speedup of @p test over @p base (makespans). */
double speedup(const RunSummary &base, const RunSummary &test);

/** EDP of @p test normalized to @p base. */
double normalizedEdp(const RunSummary &base, const RunSummary &test);

} // namespace tdm::driver

#endif // TDM_DRIVER_EXPERIMENT_HH
