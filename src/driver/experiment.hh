/**
 * @file
 * Experiment driver: builds a workload, a machine and a runtime model,
 * runs the simulation, and summarizes the metrics the paper reports.
 */

#ifndef TDM_DRIVER_EXPERIMENT_HH
#define TDM_DRIVER_EXPERIMENT_HH

#include <string>

#include "core/machine.hh"
#include "cpu/machine_config.hh"
#include "workloads/registry.hh"

namespace tdm::driver {

/** One experiment = workload x runtime x scheduler x machine config. */
struct Experiment
{
    std::string workload = "cholesky";
    wl::WorkloadParams params{};
    core::RuntimeType runtime = core::RuntimeType::Software;
    std::string scheduler = "fifo";
    cpu::MachineConfig config{};
};

/** Summary of one run. */
struct RunSummary
{
    bool completed = false;
    sim::Tick makespan = 0;
    double timeMs = 0.0;
    double energyJ = 0.0;
    double edp = 0.0;
    double avgWatts = 0.0;

    std::uint32_t numTasks = 0;
    double avgTaskUs = 0.0;

    core::MachineResult machine{};
};

/**
 * Run one experiment. When the runtime uses the DMU, params.tdmOptimal
 * is implied for default granularities unless explicitly set by the
 * caller.
 */
RunSummary run(const Experiment &exp);

/** Speedup of @p test over @p base (makespans). */
double speedup(const RunSummary &base, const RunSummary &test);

/** EDP of @p test normalized to @p base. */
double normalizedEdp(const RunSummary &base, const RunSummary &test);

} // namespace tdm::driver

#endif // TDM_DRIVER_EXPERIMENT_HH
