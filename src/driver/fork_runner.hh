/**
 * @file
 * Warm-start fork-group execution: one shared warmup (or whole
 * trajectory) leg per group of experiments.
 *
 * The campaign engine groups points whose Warmup-phase spec
 * projections agree (see spec::KeyPhase / spec::warmFingerprint) and
 * hands each group to one ForkGroupRunner. The runner simulates the
 * first member cold with fork capture armed, then serves every further
 * member from the machine's snapshots:
 *
 *  - equal ROI fingerprint (the member differs only in `power.*`
 *    keys): Machine::runFromFinal — the entire simulated trajectory is
 *    shared, only finalization re-runs;
 *  - otherwise: Machine::runFromWarm — the warmup prefix is shared,
 *    the ROI re-simulates under the member's `mem.*` configuration.
 *
 * Determinism contract: a forked member's RunSummary (makespan and the
 * full metric tree) is bit-for-bit identical to a cold run of the same
 * experiment; test_golden_determinism.cc pins this over every golden
 * configuration. The machine degrades to a cold leg whenever a
 * snapshot is unavailable (non-clonable pending event, incomplete
 * leader), so grouping is always safe, merely sometimes unprofitable.
 */

#ifndef TDM_DRIVER_FORK_RUNNER_HH
#define TDM_DRIVER_FORK_RUNNER_HH

#include <memory>
#include <string>

#include "driver/experiment.hh"

namespace tdm::driver {

/** Runs the members of one fork group; not thread-safe (the engine
 *  gives each group to exactly one worker). */
class ForkGroupRunner
{
  public:
    /**
     * @param graph      shared task graph of the group, or null (the
     *                   first cold leg builds one)
     * @param enableFork false degrades every member to a plain cold
     *                   driver::run() (singleton groups,
     *                   --no-warm-fork)
     */
    explicit ForkGroupRunner(std::shared_ptr<const rt::TaskGraph> graph,
                             bool enableFork = true);

    /**
     * Run the next member. Members must arrive with equal ROI
     * fingerprints adjacent (the engine sorts each group by
     * @p roi_key) so finalize-level forks chain. Sets @p forked (when
     * non-null) to whether the member was served from a snapshot
     * rather than a cold simulation.
     */
    RunSummary run(const Experiment &exp, const std::string &roi_key,
                   sim::TraceBuffer *trace_out, bool *forked);

    /** Drop the shared machine; the next member starts a fresh cold
     *  leg. Call after run() throws — the machine may be mid-restore. */
    void reset();

  private:
    RunSummary cold(const Experiment &exp, const std::string &roi_key,
                    sim::TraceBuffer *trace_out);

    std::shared_ptr<const rt::TaskGraph> graph_;
    bool enableFork_;
    std::unique_ptr<core::Machine> machine_;

    /** ROI fingerprint of the trajectory in the machine's final
     *  snapshot (the last cold or warm-forked leg). */
    std::string finalRoiKey_;
};

} // namespace tdm::driver

#endif // TDM_DRIVER_FORK_RUNNER_HH
