/* tdm campaign dashboard front end.
 *
 * Data flow: a one-shot fetch of each JSON endpoint paints the initial
 * state, then the /api/events SSE stream keeps it live (with a slow
 * polling fallback so a dropped stream degrades, not dies). */

"use strict";

const $ = (sel) => document.querySelector(sel);

const state = {
  selectedId: null,
  etaMs: {},       // campaign id -> latest progress-event ETA
  refreshTimer: 0, // pending detail refresh (throttle)
};

const SOURCES = ["simulated", "forked", "memory", "disk", "inflight"];

function fmtMs(ms) {
  if (!isFinite(ms)) return "–";
  if (ms < 1000) return ms.toFixed(0) + " ms";
  const s = ms / 1000;
  if (s < 120) return s.toFixed(1) + " s";
  const m = Math.floor(s / 60);
  return m + " min " + Math.round(s - m * 60) + " s";
}

function fmtBytes(n) {
  if (n < 1024) return n + " B";
  if (n < 1024 * 1024) return (n / 1024).toFixed(1) + " KiB";
  return (n / (1024 * 1024)).toFixed(1) + " MiB";
}

function el(tag, cls, text) {
  const e = document.createElement(tag);
  if (cls) e.className = cls;
  if (text !== undefined) e.textContent = text;
  return e;
}

// ---- daemon status --------------------------------------------------------

function card(k, v) {
  const c = el("div", "card");
  c.appendChild(el("div", "k", k));
  c.appendChild(el("div", "v", v));
  return c;
}

async function refreshStatus() {
  const s = await (await fetch("/api/status")).json();
  const host = $("#status-cards");
  host.replaceChildren(
    card("uptime", fmtMs(s.uptime_ms)),
    card("campaigns", String(s.campaigns)),
    card("points", String(s.points)),
    card("simulated", String(s.served.simulated)),
    card("forked", String(s.served.forked)),
    card("memory hits", String(s.served.memory)),
    card("disk hits", String(s.served.disk)),
    card("inflight hits", String(s.served.inflight)),
    card("in flight", String(s.inflight)),
    card("threads", String(s.threads)));
  if (s.store) {
    host.appendChild(card("store blobs", String(s.store.blobs)));
    host.appendChild(card("store size", fmtBytes(s.store.bytes)));
  }
  if (s.http) {
    host.appendChild(card("sse streams", String(s.http.sse_subscribers)));
    host.appendChild(card("events dropped", String(s.http.events_dropped)));
  }
}

// ---- campaign list --------------------------------------------------------

function progressBar(c) {
  const bar = el("div", "bar");
  const served = {
    simulated: c.served.simulated, forked: c.served.forked,
    memory: c.served.memory, disk: c.served.disk,
    inflight: c.served.inflight,
  };
  for (const src of SOURCES) {
    if (!served[src]) continue;
    const seg = el("div", "seg " + src);
    seg.style.width = (100 * served[src] / Math.max(1, c.total)) + "%";
    bar.appendChild(seg);
  }
  return bar;
}

async function refreshCampaigns() {
  const data = await (await fetch("/api/campaigns")).json();
  const host = $("#campaigns");
  host.replaceChildren();
  if (!data.campaigns.length) {
    host.appendChild(el("div", "empty",
      "no campaigns submitted yet — point campaign_client.py at this daemon"));
    return;
  }
  for (const c of data.campaigns.slice().reverse()) {
    const div = el("div", "campaign" +
      (c.id === state.selectedId ? " selected" : ""));
    const row = el("div", "row");
    row.appendChild(el("span", "name", "#" + c.id + " " + c.name));
    let meta = c.done + "/" + c.total + " points";
    if (c.failures) meta += " · " + c.failures + " failed";
    if (c.active) {
      const eta = state.etaMs[c.id];
      meta += eta !== undefined
        ? " · running, ~" + fmtMs(eta) + " left" : " · running";
    } else {
      meta += " · " + fmtMs(c.wall_ms);
    }
    row.appendChild(el("span", "meta", meta));
    div.appendChild(row);
    div.appendChild(progressBar(c));
    const legend = el("div", "legend");
    for (const src of SOURCES) {
      const dot = el("span", "dot seg " + src);
      legend.appendChild(dot);
      legend.appendChild(document.createTextNode(
        src + " " + c.served[src]));
    }
    div.appendChild(legend);
    div.addEventListener("click", () => selectCampaign(c.id));
    host.appendChild(div);
  }
}

// ---- campaign detail ------------------------------------------------------

function drawSparkline(points) {
  const canvas = $("#sparkline");
  const ctx = canvas.getContext("2d");
  ctx.clearRect(0, 0, canvas.width, canvas.height);
  const times = points.map((p) => p.done_at_ms)
    .filter((t) => t > 0).sort((a, b) => a - b);
  if (times.length < 2) return;
  const tMax = times[times.length - 1];
  const pad = 6;
  const w = canvas.width - 2 * pad, h = canvas.height - 2 * pad;
  ctx.strokeStyle = "#4cc2ff";
  ctx.lineWidth = 2;
  ctx.beginPath();
  ctx.moveTo(pad, pad + h);
  times.forEach((t, i) => {
    ctx.lineTo(pad + (t / tMax) * w,
               pad + h - ((i + 1) / times.length) * h);
  });
  ctx.stroke();
}

async function selectCampaign(id) {
  state.selectedId = id;
  const res = await fetch("/api/campaign/" + id + "/points");
  if (!res.ok) return;
  const data = await res.json();
  $("#detail-panel").hidden = false;
  $("#detail-title").textContent =
    "Campaign #" + data.id + " — " + data.name;
  $("#detail-summary").textContent =
    data.points.length + "/" + data.total + " points" +
    (data.metrics_pattern ? " · metrics: " + data.metrics_pattern : "") +
    (data.active ? " · running" : " · finished");

  // metric-vs-axis table: fixed columns then one per metric name
  const metricNames = [];
  for (const p of data.points)
    for (const k of Object.keys(p.metrics))
      if (!metricNames.includes(k)) metricNames.push(k);
  metricNames.sort();

  const table = $("#points-table");
  table.replaceChildren();
  const thead = el("thead");
  const hr = el("tr");
  for (const name of ["#", "label", "source", "makespan", "time_ms",
                      "sim wall", ...metricNames])
    hr.appendChild(el("th", null, name));
  thead.appendChild(hr);
  table.appendChild(thead);
  const tbody = el("tbody");
  for (const p of data.points) {
    const tr = el("tr", p.ok ? null : "failed");
    tr.appendChild(el("td", null, String(p.index)));
    tr.appendChild(el("td", null, p.label));
    const srcTd = el("td");
    srcTd.appendChild(el("span", "src " + p.source, p.source));
    tr.appendChild(srcTd);
    tr.appendChild(el("td", null, String(p.makespan)));
    tr.appendChild(el("td", null, p.time_ms.toFixed(3)));
    tr.appendChild(el("td", null,
      p.wall_ms > 0 ? fmtMs(p.wall_ms) : "–"));
    for (const name of metricNames) {
      const v = p.metrics[name];
      tr.appendChild(el("td", null, v === undefined ? "" : String(v)));
    }
    tbody.appendChild(tr);
  }
  table.appendChild(tbody);
  drawSparkline(data.points);
  refreshCampaigns();
}

function scheduleDetailRefresh() {
  if (state.selectedId === null || state.refreshTimer) return;
  state.refreshTimer = setTimeout(() => {
    state.refreshTimer = 0;
    if (state.selectedId !== null) selectCampaign(state.selectedId);
  }, 500);
}

// ---- store browser --------------------------------------------------------

async function refreshStore() {
  const data = await (await fetch("/api/store?limit=200")).json();
  const summary = $("#store-summary");
  const table = $("#store-table");
  table.replaceChildren();
  if (!data.store) {
    summary.textContent = "no result store configured (--store)";
    return;
  }
  summary.textContent = data.store.blobs + " blobs · " +
    fmtBytes(data.store.bytes) + " · " + data.store.dir +
    (data.truncated ? " (listing truncated)" : "");
  const hr = el("tr");
  for (const name of ["digest", "bytes", ""])
    hr.appendChild(el("th", null, name));
  table.appendChild(hr);
  for (const b of data.blobs) {
    const tr = el("tr");
    const td = el("td");
    const a = el("a", null, b.digest);
    a.href = "/api/store/" + b.digest;
    td.appendChild(a);
    tr.appendChild(td);
    tr.appendChild(el("td", null, fmtBytes(b.bytes)));
    const rawTd = el("td");
    const raw = el("a", null, "raw");
    raw.href = "/api/store/" + b.digest + "?raw=1";
    rawTd.appendChild(raw);
    tr.appendChild(rawTd);
    table.appendChild(tr);
  }
}

// ---- live stream ----------------------------------------------------------

function connectEvents() {
  const es = new EventSource("/api/events");
  const conn = $("#conn");
  es.onopen = () => {
    conn.textContent = "live";
    conn.className = "conn online";
  };
  es.onerror = () => {
    conn.textContent = "stream lost — retrying";
    conn.className = "conn offline";
  };
  es.addEventListener("accepted", () => refreshCampaigns());
  es.addEventListener("done", (ev) => {
    const msg = JSON.parse(ev.data);
    delete state.etaMs[msg.id];
    refreshCampaigns();
    refreshStatus();
    refreshStore();
    if (msg.id === state.selectedId) scheduleDetailRefresh();
  });
  es.addEventListener("point", (ev) => {
    const msg = JSON.parse(ev.data);
    refreshCampaigns();
    if (msg.id === state.selectedId) scheduleDetailRefresh();
  });
  es.addEventListener("progress", (ev) => {
    const msg = JSON.parse(ev.data);
    state.etaMs[msg.id] = msg.eta_ms;
    refreshCampaigns();
  });
}

refreshStatus();
refreshCampaigns();
refreshStore();
connectEvents();
setInterval(refreshStatus, 5000);   // fallback when the stream is down
setInterval(refreshStore, 15000);
